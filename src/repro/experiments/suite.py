"""Suite execution: many experiments, one deduplicated cell grid.

``repro all --jobs N`` collects every requested experiment's cells into
a *single* grid before running it, so cells shared between figures (the
group-workload runs figs 4 and 5 both consume) are computed exactly
once — the parallel analogue of the serial ``_GROUP_MEMO`` sharing —
and every independent cell across all figures can occupy a worker at
the same time.

Each experiment module exposes the uniform pair ``cells(config)`` /
``assemble(config, results)``; this registry names them so the suite
can be driven from the CLI without importing every harness up front.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import FigureResult
from repro.experiments.config import ExperimentConfig
from repro.parallel import CellSpec, GridError, resolve, run_grid

#: experiment name -> ("module:cells", "module:assemble")
GRID_EXPERIMENTS: Dict[str, Tuple[str, str]] = {
    "fig2": ("repro.experiments.fig2:cells", "repro.experiments.fig2:assemble"),
    "fig3": ("repro.experiments.fig3:cells", "repro.experiments.fig3:assemble"),
    "fig4": ("repro.experiments.fig4:cells", "repro.experiments.fig4:assemble"),
    "fig5": ("repro.experiments.fig5:cells", "repro.experiments.fig5:assemble"),
    "fig6": ("repro.experiments.fig6:cells", "repro.experiments.fig6:assemble"),
    "alpha-sweep": (
        "repro.experiments.ablations:alpha_cells",
        "repro.experiments.ablations:alpha_assemble",
    ),
    "segment-ablation": (
        "repro.experiments.ablations:segment_cells",
        "repro.experiments.ablations:segment_assemble",
    ),
    "cache-ablation": (
        "repro.experiments.ablations:cache_cells",
        "repro.experiments.ablations:cache_assemble",
    ),
    "restore-ablation": (
        "repro.experiments.restore_ablation:cells",
        "repro.experiments.restore_ablation:assemble",
    ),
    "related-work": (
        "repro.experiments.extensions:related_cells",
        "repro.experiments.extensions:related_assemble",
    ),
    "gc-study": (
        "repro.experiments.extensions:gc_cells",
        "repro.experiments.extensions:gc_assemble",
    ),
    "frontier": (
        "repro.experiments.frontier:cells",
        "repro.experiments.frontier:assemble",
    ),
    "tenants": (
        "repro.experiments.tenants:cells",
        "repro.experiments.tenants:assemble",
    ),
}

#: what ``repro all`` runs, in print order
ALL_FIGURES: Tuple[str, ...] = ("fig2", "fig3", "fig4", "fig5", "fig6")


def run_suite(
    names: Sequence[str],
    config: Optional[ExperimentConfig] = None,
    *,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
) -> Tuple[Dict[str, FigureResult], Dict[str, str]]:
    """Run several experiments over one deduplicated cell grid.

    Returns ``(results, errors)``: per-experiment figure results (which
    may carry per-cell ``failures``) and per-experiment fatal errors
    (every cell an experiment needed failed, so nothing was assembled).
    """
    config = config if config is not None else ExperimentConfig.default()
    specs: List[CellSpec] = []
    per_name: Dict[str, Tuple[str, str]] = {}
    for name in names:
        if name not in GRID_EXPERIMENTS:
            raise ValueError(
                f"unknown experiment {name!r}; pick from {sorted(GRID_EXPERIMENTS)}"
            )
        cells_ref, assemble_ref = GRID_EXPERIMENTS[name]
        per_name[name] = (cells_ref, assemble_ref)
        specs.extend(resolve(cells_ref)(config))
    grid = run_grid(specs, jobs=jobs, timeout_s=timeout_s)
    results: Dict[str, FigureResult] = {}
    errors: Dict[str, str] = {}
    for name in names:
        _, assemble_ref = per_name[name]
        try:
            results[name] = resolve(assemble_ref)(config, grid)
        except GridError as exc:
            errors[name] = str(exc)
    return results, errors


def suite_failed(
    results: Dict[str, FigureResult], errors: Dict[str, str]
) -> bool:
    """True when any experiment had a failed cell or failed outright."""
    return bool(errors) or any(r.failures for r in results.values())
