"""Persisting figure results: JSON and CSV writers + loader.

Lets experiment runs be archived and diffed across code versions
(EXPERIMENTS.md's tables are regenerated from these files), and feeds
external plotting tools without adding a plotting dependency here.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from repro.experiments.common import FigureResult

PathLike = Union[str, Path]


def save_json(result: FigureResult, path: PathLike) -> Path:
    """Write a figure result as a self-describing JSON document."""
    path = Path(path)
    payload = {
        "figure": result.figure,
        "title": result.title,
        "x_label": result.x_label,
        "x": list(result.x),
        "series": {name: list(values) for name, values in result.series.items()},
        "notes": dict(result.notes),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_json(path: PathLike) -> FigureResult:
    """Read a figure result written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    return FigureResult(
        figure=payload["figure"],
        title=payload["title"],
        x_label=payload["x_label"],
        x=[int(v) for v in payload["x"]],
        series={k: [float(v) for v in vals] for k, vals in payload["series"].items()},
        notes={str(k): str(v) for k, v in payload["notes"].items()},
    )


def save_csv(result: FigureResult, path: PathLike) -> Path:
    """Write the series as a CSV table (one row per x value)."""
    path = Path(path)
    names = list(result.series)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow([result.x_label] + names)
        for i, xv in enumerate(result.x):
            writer.writerow([xv] + [result.series[n][i] for n in names])
    return path
