"""The placement-policy frontier: what each engine trades for what.

Every placement policy in the repo occupies a different point on the
same four-way trade: deduplication ratio, ingest rate, restore locality
(by backup age), and out-of-line maintenance cost. This experiment runs
**all** engines over the author workload — driving the out-of-line
maintenance pass after every generation for engines that have one — and
emits one column per engine with the frontier metrics as rows:

====  =============================================================
row   metric
====  =============================================================
0     dedup ratio, logical / *net* stored bytes after maintenance
1     ingest MB/s (simulated, inline phase only)
2     maintenance simulated seconds (0 for inline-only engines)
3     restore seeks, latest generation
4     restore seeks, middle generation
5     restore seeks, oldest generation
6     total simulated cost: ingest + maintenance seconds
====  =============================================================

The headline verification (ISSUE 9 / ROADMAP item 4): RevDedup beats
DeFrag on latest-generation restore seeks (its newest backup is
physically sequential) and loses on total ingest+maintenance cost (it
rewrites whole segments inline and pays a reverse-reference pass per
generation). Both comparisons are printed as notes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api import create_engine, create_reader, create_resources, engine_info
from repro.dedup.pipeline import GroundTruth, run_backup
from repro.experiments.common import (
    ENGINE_NAMES,
    MAINTENANCE_ENGINE_NAMES,
    FigureResult,
    cell_values,
    config_fingerprint,
    paper_segmenter,
)
from repro.experiments.config import ExperimentConfig
from repro.parallel import CellSpec, GridError, run_grid
from repro.workloads.generators import author_fs_20_full

#: every engine on the frontier, paper legends first
ENGINES = ENGINE_NAMES + MAINTENANCE_ENGINE_NAMES

#: metric-row legend, in row order
ROWS = (
    "dedup ratio (net)",
    "ingest MB/s",
    "maintenance s",
    "latest seeks",
    "middle seeks",
    "oldest seeks",
    "total cost s",
)


def _author_jobs(config: ExperimentConfig):
    return author_fs_20_full(
        fs_bytes=config.fs_bytes,
        seed=config.seed,
        n_generations=config.n_generations,
        churn=config.churn_full,
    )


def frontier_cell(config: ExperimentConfig, engine: str) -> Dict:
    """Grid cell: one engine's full lifecycle — ingest every generation,
    drive the out-of-line maintenance pass after each (no-op for
    inline-only engines), then restore backups of three ages from the
    final layout."""
    res = create_resources(config)
    eng = create_engine(engine, config, res)
    maintain = engine_info(engine).supports_maintenance
    segmenter = paper_segmenter()
    truth = GroundTruth()
    reports = []
    maint_seconds = 0.0
    maint_containers = 0
    maint_moved = 0
    for job in _author_jobs(config):
        reports.append(run_backup(eng, job, segmenter, truth))
        if maintain:
            m, remapped = eng.end_generation([r.recipe for r in reports])
            for report, recipe in zip(reports, remapped):
                report.recipe = recipe
            if m is not None:
                maint_seconds += m.elapsed_seconds
                maint_containers += m.containers_rewritten
                maint_moved += m.bytes_moved

    store = res.store
    net_stored = sum(store.get(cid).data_bytes for cid in store.cids())
    logical = sum(r.logical_bytes for r in reports)
    ingest_seconds = sum(r.elapsed_seconds for r in reports)

    reader = create_reader(store, config)
    n = len(reports)
    latest = reader.restore(reports[-1].recipe)
    middle = reader.restore(reports[n // 2].recipe)
    oldest = reader.restore(reports[0].recipe)
    return {
        "row": [
            logical / max(net_stored, 1),
            logical / max(ingest_seconds, 1e-9) / 1e6,
            maint_seconds,
            float(latest.seeks),
            float(middle.seeks),
            float(oldest.seeks),
            ingest_seconds + maint_seconds,
        ],
        "maintenance_containers": maint_containers,
        "maintenance_moved_bytes": maint_moved,
    }


def cells(config: ExperimentConfig) -> List[CellSpec]:
    """The frontier grid: one lifecycle cell per engine."""
    return [
        CellSpec(
            key=("frontier", engine, config_fingerprint(config)),
            fn="repro.experiments.frontier:frontier_cell",
            config=config,
            kwargs={"engine": engine},
        )
        for engine in ENGINES
    ]


def assemble(config: ExperimentConfig, results: Dict) -> FigureResult:
    """Rebuild the frontier table from grid cell payloads."""
    specs = cells(config)
    values, failures = cell_values(specs, results)
    if not values:
        raise GridError(f"frontier: every cell failed: {failures}")
    nan = [float("nan")] * len(ROWS)
    series = {}
    for spec in specs:
        payload = values.get(spec.key)
        series[spec.kwargs["engine"]] = (
            list(payload["row"]) if payload else list(nan)
        )
    notes = {
        "rows": "; ".join(f"{i}: {name}" for i, name in enumerate(ROWS)),
    }
    rev, defrag = series.get("RevDedup"), series.get("DeFrag")
    if rev is not None and defrag is not None:
        latest = ROWS.index("latest seeks")
        cost = ROWS.index("total cost s")
        notes["revdedup_latest_seeks_lt_defrag"] = (
            f"{rev[latest]:.0f} < {defrag[latest]:.0f}: "
            f"{rev[latest] < defrag[latest]}"
        )
        notes["revdedup_total_cost_gt_defrag"] = (
            f"{rev[cost]:.1f} > {defrag[cost]:.1f}: {rev[cost] > defrag[cost]}"
        )
    return FigureResult(
        figure="Frontier",
        title="placement-policy frontier, all engines",
        x_label="metric-idx",
        x=list(range(len(ROWS))),
        series=series,
        notes=notes,
        failures=failures,
    )


def run(
    config: Optional[ExperimentConfig] = None, *, jobs: int = 1
) -> FigureResult:
    """Produce the placement-policy frontier table."""
    config = config if config is not None else ExperimentConfig.default()
    return assemble(config, run_grid(cells(config), jobs=jobs))


def main() -> None:  # pragma: no cover - CLI entry
    print(run().table())


if __name__ == "__main__":  # pragma: no cover
    main()
