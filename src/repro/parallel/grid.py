"""Process-pool grid runner with deterministic merge semantics.

A *cell* is one independent unit of an experiment grid: typically one
(engine, config, alpha) point. Cells are described by :class:`CellSpec`
— the cell function is named by ``"module:function"`` so it resolves in
the executing process by reference, never by pickling code — and
executed by :func:`run_grid`, which guarantees:

* **Determinism.** Before a cell function runs, the global RNGs
  (``random`` and ``numpy``) are seeded from :func:`cell_seed`, a
  SHA-256 derivation of the cell key and the config seed. The seeding
  happens identically in inline (``jobs=1``) and worker execution, so a
  cell's result can never depend on which venue ran it or on what ran
  before it. The simulation itself draws only from config-seeded
  generators; the per-cell seeding pins down any incidental global-RNG
  use so it cannot introduce venue-dependence.
* **Stable merge order.** Results, metric snapshots, and event streams
  are merged in *spec order* (the order cells were submitted), never in
  completion order. Serial execution processes cells in spec order, so
  a parallel run's merged observability output is byte-identical to the
  serial run's.
* **Failure isolation.** A cell that raises, dies, or exceeds the
  per-cell timeout is retried once (configurable) and then recorded as
  a failed :class:`CellResult` — the grid keeps going and the failure
  is surfaced in the figure table rather than aborting the run.
* **Workload-cache fan-out.** A spec may name a ``warm`` hook that the
  parent calls once per distinct config *before* forking, so the
  engine-independent workload preparation memo (`` _prepared_group``)
  is inherited by every worker instead of being recomputed per cell.

Observability: when the ambient ``repro.obs`` session is enabled, each
cell — inline or worker — runs under a fresh capture session whose
registry snapshot and event list ride back with the result; the parent
merges them in spec order (:meth:`MetricsRegistry.merge` + re-emission
into the parent sink). When the ambient session is disabled (the
default), capture is skipped entirely and workers return payloads only.
"""

from __future__ import annotations

import hashlib
import importlib
import logging
import multiprocessing as mp
import multiprocessing.connection
import random
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

log = logging.getLogger(__name__)

__all__ = [
    "CellKey",
    "CellSpec",
    "CellResult",
    "GridError",
    "cell_seed",
    "resolve",
    "run_grid",
]

#: A cell's identity: a tuple of strings, stable across runs and
#: sortable (tests normalize streams by stable-sorting on it).
CellKey = Tuple[str, ...]


class GridError(RuntimeError):
    """Every cell a figure needs failed; nothing to assemble."""


def resolve(spec: str) -> Callable:
    """Resolve a ``"module:function"`` reference in this process."""
    modname, _, funcname = spec.partition(":")
    if not funcname:
        raise ValueError(f"cell function spec {spec!r} is not 'module:function'")
    return getattr(importlib.import_module(modname), funcname)


def cell_seed(key: Sequence[str], base_seed: int = 0) -> int:
    """Deterministic 64-bit seed for a cell, derived from its key.

    SHA-256 over ``(base_seed, *key)`` — stable across processes,
    platforms, and Python versions (no reliance on ``hash()``), and
    distinct for distinct cells, so two cells can never share incidental
    RNG streams no matter how the grid schedules them.
    """
    text = repr((int(base_seed),) + tuple(str(k) for k in key))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class CellSpec:
    """One grid cell: a function reference plus its inputs.

    Attributes:
        key: stable identity; cells with equal keys are deduplicated
            (their fn/config/kwargs must match) and computed once.
        fn: ``"module:function"`` executed as ``fn(config, **kwargs)``;
            must be importable in the worker (a top-level function).
        config: first positional argument (the experiment config); must
            be picklable for non-fork start methods.
        kwargs: extra keyword arguments (picklable).
        warm: optional ``"module:function"`` called as ``warm(config)``
            in the parent before workers fork — the shared-workload
            precompute hook.
    """

    key: CellKey
    fn: str
    config: Any = None
    kwargs: Dict[str, Any] = field(default_factory=dict)
    warm: Optional[str] = None


@dataclass
class CellResult:
    """Outcome of one cell: a payload, or a recorded failure."""

    key: CellKey
    value: Optional[Any] = None
    error: Optional[str] = None
    attempts: int = 0
    elapsed_s: float = 0.0
    #: captured observability (present only when the ambient session was
    #: enabled and the cell succeeded); merged by the runner, kept for
    #: tests and tooling
    snapshot: Optional[Dict] = None
    events: Optional[List[Dict]] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def describe_failure(self) -> str:
        head = (self.error or "").strip().splitlines()
        return f"{'/'.join(self.key)}: {head[-1] if head else 'unknown error'}"


def _seed_cell(spec: CellSpec) -> None:
    base = getattr(spec.config, "seed", 0) or 0
    seed = cell_seed(spec.key, base_seed=base)
    random.seed(seed)
    np.random.seed(seed % 2**32)


def _execute(spec: CellSpec, capture: bool):
    """Run one cell in this process; returns (payload, snapshot, events)."""
    _seed_cell(spec)
    fn = resolve(spec.fn)
    if not capture:
        return fn(spec.config, **spec.kwargs), None, None
    from repro.obs import ListEventSink, Observability, obs_session

    sink = ListEventSink()
    with obs_session(Observability(events=sink)) as cell_obs:
        payload = fn(spec.config, **spec.kwargs)
    return payload, cell_obs.registry.snapshot(), sink.events


def _worker_main(conn, spec: CellSpec, capture: bool) -> None:
    """Child-process entry: run the cell, ship the result over the pipe."""
    try:
        # drop any ambient obs session forked in from the parent — the
        # cell either captures into its own fresh session or records
        # nothing; it must never write into a forked copy of the
        # parent's registry/sink
        import repro.obs as obs_mod

        obs_mod._active = obs_mod.NULL_OBS
        if spec.warm is not None:
            # memo hit when fork-inherited; recompute under spawn
            resolve(spec.warm)(spec.config)
        payload, snapshot, events = _execute(spec, capture)
        conn.send(("ok", payload, snapshot, events))
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc(limit=20)))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


def _dedupe(specs: Sequence[CellSpec]) -> List[CellSpec]:
    """First spec per key wins; conflicting duplicates are an error."""
    seen: Dict[CellKey, CellSpec] = {}
    out: List[CellSpec] = []
    for spec in specs:
        prev = seen.get(spec.key)
        if prev is None:
            seen[spec.key] = spec
            out.append(spec)
        elif (prev.fn, prev.config, prev.kwargs) != (spec.fn, spec.config, spec.kwargs):
            raise ValueError(
                f"cell key {spec.key!r} submitted twice with different work"
            )
    return out


@dataclass
class _Running:
    spec: CellSpec
    attempt: int
    proc: Any
    conn: Any
    deadline: Optional[float]
    started: float


def _spawn(ctx, spec: CellSpec, attempt: int, capture: bool, timeout_s) -> _Running:
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_worker_main, args=(child_conn, spec, capture), daemon=True
    )
    proc.start()
    child_conn.close()
    now = time.monotonic()
    deadline = now + timeout_s if timeout_s is not None else None
    return _Running(spec, attempt, proc, parent_conn, deadline, now)


def _finish(run: _Running) -> None:
    try:
        run.conn.close()
    except Exception:
        pass
    run.proc.join(timeout=5)
    if run.proc.is_alive():  # pragma: no cover - stuck worker
        run.proc.kill()
        run.proc.join()


def _run_cells_processes(
    specs: List[CellSpec],
    results: Dict[CellKey, CellResult],
    *,
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
    capture: bool,
) -> None:
    """Execute ``specs`` across ``jobs`` worker processes (one process
    per cell attempt, so a timed-out cell can be killed cleanly)."""
    ctx = (
        mp.get_context("fork")
        if "fork" in mp.get_all_start_methods()
        else mp.get_context()
    )
    pending: List[Tuple[CellSpec, int]] = [(s, 1) for s in specs]
    running: List[_Running] = []
    try:
        while pending or running:
            while pending and len(running) < jobs:
                spec, attempt = pending.pop(0)
                running.append(_spawn(ctx, spec, attempt, capture, timeout_s))
            now = time.monotonic()
            wait_for = 0.5
            if timeout_s is not None and running:
                wait_for = max(
                    0.01, min(r.deadline - now for r in running if r.deadline)
                )
            ready = multiprocessing.connection.wait(
                [r.conn for r in running], timeout=min(wait_for, 0.5)
            )
            done: List[_Running] = []
            for run in running:
                failure: Optional[str] = None
                if run.conn in ready:
                    try:
                        msg = run.conn.recv()
                    except EOFError:
                        msg = None
                    if msg is not None and msg[0] == "ok":
                        _, payload, snapshot, events = msg
                        results[run.spec.key] = CellResult(
                            key=run.spec.key,
                            value=payload,
                            attempts=run.attempt,
                            elapsed_s=time.monotonic() - run.started,
                            snapshot=snapshot,
                            events=events,
                        )
                        done.append(run)
                        continue
                    if msg is not None:
                        failure = msg[1]
                    else:
                        failure = (
                            f"worker died without a result "
                            f"(exitcode {run.proc.exitcode})"
                        )
                elif run.deadline is not None and time.monotonic() > run.deadline:
                    run.proc.terminate()
                    failure = f"cell timed out after {timeout_s:g}s"
                else:
                    continue
                done.append(run)
                if run.attempt <= retries:
                    log.warning(
                        "cell %s attempt %d failed (%s); retrying",
                        "/".join(run.spec.key),
                        run.attempt,
                        failure.strip().splitlines()[-1],
                    )
                    pending.append((run.spec, run.attempt + 1))
                else:
                    log.error(
                        "cell %s failed after %d attempts",
                        "/".join(run.spec.key),
                        run.attempt,
                    )
                    results[run.spec.key] = CellResult(
                        key=run.spec.key,
                        error=failure,
                        attempts=run.attempt,
                        elapsed_s=time.monotonic() - run.started,
                    )
            for run in done:
                _finish(run)
                running.remove(run)
    finally:
        for run in running:  # pragma: no cover - cleanup on error paths
            run.proc.terminate()
            _finish(run)


def _run_cells_inline(
    specs: List[CellSpec],
    results: Dict[CellKey, CellResult],
    *,
    retries: int,
    capture: bool,
) -> None:
    """Serial execution in this process — the ``jobs=1`` reference path.

    Uses the same per-cell seeding and (when enabled) the same per-cell
    observability capture as workers, so the merged output is the same
    bytes regardless of venue. Timeouts are not enforced inline.
    """
    for spec in specs:
        attempt = 0
        while True:
            attempt += 1
            started = time.monotonic()
            try:
                payload, snapshot, events = _execute(spec, capture)
            except Exception:
                failure = traceback.format_exc(limit=20)
                if attempt <= retries:
                    log.warning(
                        "cell %s attempt %d failed; retrying",
                        "/".join(spec.key),
                        attempt,
                    )
                    continue
                results[spec.key] = CellResult(
                    key=spec.key,
                    error=failure,
                    attempts=attempt,
                    elapsed_s=time.monotonic() - started,
                )
                break
            results[spec.key] = CellResult(
                key=spec.key,
                value=payload,
                attempts=attempt,
                elapsed_s=time.monotonic() - started,
                snapshot=snapshot,
                events=events,
            )
            break


def _warm_parent(specs: Sequence[CellSpec]) -> None:
    """Run each distinct warm hook once in the parent, pre-fork, so the
    prepared-workload memo is inherited read-only by every worker."""
    done = set()
    for spec in specs:
        if spec.warm is None:
            continue
        key = (spec.warm, repr(spec.config))
        if key in done:
            continue
        done.add(key)
        resolve(spec.warm)(spec.config)


def _merge_obs(obs, specs: Sequence[CellSpec], results: Dict[CellKey, CellResult]):
    """Fold captured per-cell observability into the parent session, in
    stable spec order (never completion order).

    ``MetricsRegistry.merge`` handles every kind deterministically —
    counters/spans/histograms add, gauges last-write-wins in this spec
    order, and time series interleave samples by simulated time and
    re-thin — so the merged snapshot (time series included) is
    byte-identical to what serial recording into one registry produces.
    """
    for spec in specs:
        result = results.get(spec.key)
        if result is None or not result.ok:
            continue
        if result.snapshot is not None:
            obs.registry.merge(result.snapshot)
        if result.events:
            for event in result.events:
                fields = dict(event)
                etype = fields.pop("type")
                obs.events.emit(etype, **fields)


def run_grid(
    specs: Sequence[CellSpec],
    *,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    obs=None,
) -> Dict[CellKey, CellResult]:
    """Execute a grid of cells and return results keyed by cell key.

    Args:
        specs: cells in stable order; duplicate keys are computed once.
        jobs: worker processes; ``1`` runs inline (the serial reference).
        timeout_s: per-cell wall-clock budget (workers only; inline
            execution is not interruptible).
        retries: extra attempts after a failed one (default 1 → at most
            two attempts per cell).
        obs: observability session to merge into (default: the ambient
            session). Capture is skipped when it is disabled.

    Returns:
        ``{key: CellResult}`` — a failed cell has ``.error`` set and
        ``.value = None``; the grid never raises for cell failures.
    """
    from repro.obs import get_active

    if obs is None:
        obs = get_active()
    capture = bool(obs.enabled)
    unique = _dedupe(specs)
    results: Dict[CellKey, CellResult] = {}
    if jobs <= 1 or len(unique) <= 1:
        _run_cells_inline(unique, results, retries=retries, capture=capture)
    else:
        _warm_parent(unique)
        # flush the parent sink pre-fork: a child must never inherit (and
        # on exit re-write) buffered parent output
        obs.events.flush()
        _run_cells_processes(
            unique,
            results,
            jobs=jobs,
            timeout_s=timeout_s,
            retries=retries,
            capture=capture,
        )
    if capture:
        _merge_obs(obs, unique, results)
    return results
