"""``repro.parallel`` — deterministic parallel grid execution.

Every paper figure and ablation is a grid of independent *cells* (one
engine x config x alpha point each). This package decomposes such grids
into :class:`CellSpec` units, executes them across N worker processes
with deterministic per-cell RNG seeding derived from the cell key, and
merges the results — including ``repro.obs`` metric snapshots and event
streams — back into the parent session in stable cell order, so
``--jobs N`` output is byte-identical to serial (``--jobs 1``) output.

See DESIGN.md §9 for the cell decomposition and the RNG-derivation
scheme.
"""

from repro.parallel.grid import (
    CellKey,
    CellResult,
    CellSpec,
    GridError,
    cell_seed,
    resolve,
    run_grid,
)

__all__ = [
    "CellKey",
    "CellResult",
    "CellSpec",
    "GridError",
    "cell_seed",
    "resolve",
    "run_grid",
]
