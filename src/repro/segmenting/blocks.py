"""SiLo blocks: groups of contiguous segments.

SiLo (Xia et al., USENIX ATC'11) exploits similarity *and* locality: each
segment is summarized by a representative fingerprint; contiguous
segments are packed into a *block*, the on-disk read/write unit. When an
incoming segment is similar to a stored one, SiLo fetches the whole block
containing it, so duplicates in neighbouring segments are found too —
provided the duplicate locality inside blocks still holds, which is
exactly what placement de-linearization erodes (paper Fig. 3/5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._util import MIB, check_positive
from repro.segmenting.segmenter import Segment

from repro.storage.container import CHUNK_METADATA_BYTES


def representative_fingerprint(fps: np.ndarray) -> int:
    """SiLo's segment summary: the minimum fingerprint of the segment.

    Min-wise sampling gives the similarity property: two segments sharing
    a large fraction of chunks pick the same representative with
    probability equal to their Jaccard similarity.
    """
    if fps.size == 0:
        raise ValueError("cannot summarize an empty segment")
    return int(fps.min())


@dataclass(frozen=True)
class Block:
    """A sealed block: the fingerprints of its member segments' chunks.

    Attributes:
        bid: block id.
        fingerprints: all chunk fingerprints in the block, write order.
        segment_reps: representative fingerprint of each member segment.
        data_bytes: payload bytes across member segments.
    """

    bid: int
    fingerprints: np.ndarray
    segment_reps: np.ndarray
    data_bytes: int

    @property
    def n_chunks(self) -> int:
        return int(self.fingerprints.size)

    @property
    def metadata_bytes(self) -> int:
        """Size of the block's on-disk fingerprint index (what a
        similarity hit transfers into RAM)."""
        return self.n_chunks * CHUNK_METADATA_BYTES


class BlockBuilder:
    """Accumulates written segments into fixed-capacity blocks.

    Args:
        block_bytes: payload capacity per block (SiLo-scale default 8 MiB).
    """

    def __init__(self, block_bytes: int = 8 * MIB) -> None:
        check_positive("block_bytes", block_bytes)
        self.block_bytes = int(block_bytes)
        self._next_bid = 0
        self._fps: List[np.ndarray] = []
        self._reps: List[int] = []
        self._bytes = 0

    @property
    def current_bid(self) -> int:
        """Id the next sealed block will get (segments added now land in
        this block)."""
        return self._next_bid

    @property
    def pending_bytes(self) -> int:
        return self._bytes

    def add_segment(self, segment: Segment, written_fps: np.ndarray, written_bytes: int) -> int:
        """Add one processed segment's *written* chunks to the open block.

        Args:
            segment: the incoming segment (for its representative).
            written_fps: fingerprints actually stored for this segment.
            written_bytes: payload bytes actually stored.

        Returns:
            The block id this segment was assigned to.
        """
        bid = self._next_bid
        if written_fps.size:
            self._fps.append(np.asarray(written_fps, dtype=np.uint64))
        self._reps.append(representative_fingerprint(segment.fps))
        self._bytes += int(written_bytes)
        return bid

    def should_seal(self) -> bool:
        """True once the open block has reached capacity."""
        return self._bytes >= self.block_bytes

    def seal(self) -> Optional[Block]:
        """Seal and return the open block (None if it is empty)."""
        if not self._reps:
            return None
        fps = (
            np.concatenate(self._fps)
            if self._fps
            else np.zeros(0, dtype=np.uint64)
        )
        block = Block(
            bid=self._next_bid,
            fingerprints=fps,
            segment_reps=np.asarray(self._reps, dtype=np.uint64),
            data_bytes=self._bytes,
        )
        self._next_bid += 1
        self._fps = []
        self._reps = []
        self._bytes = 0
        return block
