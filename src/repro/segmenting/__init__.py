"""Segmenting substrate.

The paper's processing unit (§III-B): contiguous chunks are grouped into
*segments* of 0.5–2 MB, cut at content-defined positions so that the same
data produces the same segments across backups. Segments are:

* the unit DeFrag evaluates SPL over (incoming ``Seg_m`` vs stored
  ``Seg_k``), and
* the unit SiLo computes similarity over (representative fingerprint),
  with segments further grouped into *blocks* (SiLo's read/write unit).
"""

from repro.segmenting.segmenter import (
    ContentDefinedSegmenter,
    FixedSegmenter,
    Segment,
    Segmenter,
)
from repro.segmenting.blocks import Block, BlockBuilder, representative_fingerprint

__all__ = [
    "ContentDefinedSegmenter",
    "FixedSegmenter",
    "Segment",
    "Segmenter",
    "Block",
    "BlockBuilder",
    "representative_fingerprint",
]
