"""Grouping chunk streams into segments.

Per the paper §III-B: "breaks [the stream] into serials of chunks and
groups multiple contiguous chunks into segments. Each of segments varies
from 0.5MB to 2MB based on the chunk content."

Content-defined segment boundaries are chosen by testing each chunk's
fingerprint against a divisor (the Extreme Binning / SiLo technique), so
identical data regions segment identically across backups regardless of
their position in the stream.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, List

import numpy as np

from repro._util import MIB, check_positive
from repro.chunking.base import ChunkStream


@dataclass(frozen=True)
class Segment:
    """A contiguous run of chunks from one backup stream.

    Attributes:
        index: segment ordinal within its stream.
        start: index of the first chunk in the parent stream.
        fps: uint64 fingerprints (a view into the parent stream's array).
        sizes: uint32 chunk sizes (parallel view).
    """

    index: int
    start: int
    fps: np.ndarray
    sizes: np.ndarray

    @property
    def n_chunks(self) -> int:
        return int(self.fps.size)

    @cached_property
    def nbytes(self) -> int:
        # cached: the arrays are views of an immutable stream, and the
        # ingest path reads this several times per segment
        return int(self.sizes.sum(dtype=np.int64)) if self.n_chunks else 0

    @property
    def stop(self) -> int:
        """Index one past the last chunk in the parent stream."""
        return self.start + self.n_chunks

    def __len__(self) -> int:
        return self.n_chunks


class Segmenter(abc.ABC):
    """Interface: split a chunk stream into contiguous segments."""

    @abc.abstractmethod
    def boundaries(self, stream: ChunkStream) -> np.ndarray:
        """Return chunk-index cut points, starting at 0, ending at
        ``len(stream)``."""

    def split(self, stream: ChunkStream) -> List[Segment]:
        """Split ``stream`` into :class:`Segment` views."""
        return self.split_at(stream, self.boundaries(stream))

    def split_at(self, stream: ChunkStream, cuts: np.ndarray) -> List[Segment]:
        """Segment views from precomputed cuts (as from
        :meth:`boundaries`) — lets callers needing both the cuts and the
        segments pay for one boundary scan."""
        fps = stream.fps
        sizes = stream.sizes
        segments: List[Segment] = []
        for i in range(len(cuts) - 1):
            a, b = int(cuts[i]), int(cuts[i + 1])
            segments.append(Segment(index=i, start=a, fps=fps[a:b], sizes=sizes[a:b]))
        return segments

    def iter_split(self, stream: ChunkStream) -> Iterator[Segment]:
        """Like :meth:`split` but lazy."""
        return iter(self.split(stream))


@dataclass
class ContentDefinedSegmenter(Segmenter):
    """Content-defined segmenting (the paper's configuration by default).

    A chunk ends a segment when ``fp % divisor == 0`` once the segment has
    reached ``min_bytes``; a cut is forced at ``max_bytes``. With 8 KiB
    average chunks and ``divisor = avg_bytes / 8 KiB``, segments average
    ``avg_bytes``.

    Attributes:
        min_bytes: minimum segment payload (paper: 0.5 MB).
        avg_bytes: target average payload (1 MB).
        max_bytes: forced-cut payload (paper: 2 MB).
        avg_chunk_bytes: expected chunk size, used to derive the divisor.
    """

    min_bytes: int = MIB // 2
    avg_bytes: int = MIB
    max_bytes: int = 2 * MIB
    avg_chunk_bytes: int = 8 * 1024
    _divisor: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive("min_bytes", self.min_bytes)
        if not self.min_bytes <= self.avg_bytes <= self.max_bytes:
            raise ValueError(
                f"need min <= avg <= max, got "
                f"{self.min_bytes}/{self.avg_bytes}/{self.max_bytes}"
            )
        check_positive("avg_chunk_bytes", self.avg_chunk_bytes)
        # After min_bytes, boundaries fire once per (avg - min) worth of
        # chunks on average, centering segment sizes on avg_bytes.
        span = max(self.avg_bytes - self.min_bytes, self.avg_chunk_bytes)
        self._divisor = max(2, span // self.avg_chunk_bytes)

    def boundaries(self, stream: ChunkStream) -> np.ndarray:
        """One searchsorted step per *segment* instead of one loop
        iteration per chunk: a segment ends at the earlier of the first
        chunk crossing ``max_bytes`` and the first boundary candidate past
        ``min_bytes`` — both monotone in the cumulative byte total, so
        each is a binary search."""
        n = len(stream)
        if n == 0:
            return np.zeros(1, dtype=np.int64)
        cum = np.cumsum(stream.sizes, dtype=np.int64)
        cand_idx = np.flatnonzero((stream.fps % np.uint64(self._divisor)) == 0)
        cand_cum = cum[cand_idx]
        cuts = [0]
        base = 0
        pos = 0
        while True:
            i_forced = int(np.searchsorted(cum, base + self.max_bytes))
            k = max(
                int(np.searchsorted(cand_idx, pos)),
                int(np.searchsorted(cand_cum, base + self.min_bytes)),
            )
            i_cand = int(cand_idx[k]) if k < cand_idx.size else n
            i = min(i_forced, i_cand)
            if i >= n:
                break
            cuts.append(i + 1)
            base = int(cum[i])
            pos = i + 1
        if cuts[-1] != n:
            cuts.append(n)
        return np.asarray(cuts, dtype=np.int64)


@dataclass
class FixedSegmenter(Segmenter):
    """Cut a new segment every ``target_bytes`` of payload (ablation
    baseline: position-defined, so segment contents shift with edits)."""

    target_bytes: int = MIB

    def __post_init__(self) -> None:
        check_positive("target_bytes", self.target_bytes)

    def boundaries(self, stream: ChunkStream) -> np.ndarray:
        n = len(stream)
        if n == 0:
            return np.zeros(1, dtype=np.int64)
        cum = np.cumsum(stream.sizes, dtype=np.int64)
        cuts = [0]
        threshold = self.target_bytes
        while True:
            i = int(np.searchsorted(cum, threshold))
            if i >= n:
                break
            cuts.append(i + 1)
            threshold = int(cum[i]) + self.target_bytes
        if cuts[-1] != n:
            cuts.append(n)
        return np.asarray(cuts, dtype=np.int64)
