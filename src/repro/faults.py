"""``repro.faults`` — deterministic fault injection at the disk boundary.

The paper's performance argument assumes the container log stays
*consistent*; a production-grade reproduction must also survive the
failure modes real container logs face — torn seals, lost index flushes,
crashes mid-GC. This module supplies the failure half of that story:

* :class:`FaultPlan` — a seeded, fully deterministic schedule of faults
  keyed by *disk operation count* (every :class:`FaultyDisk` read/write
  increments the counter exactly once, so a plan replays identically).
* :class:`FaultInjector` — the per-run interpreter of a plan. It raises
  :class:`TransientIOError` for scheduled IO errors, raises
  :class:`SimulatedCrash` at the scheduled crash point, and answers the
  index's "was this flush dropped?" question. It also keeps the op
  census (op kind + context-tag stack) that the chaos harness uses to
  pick crash points covering seals, index flushes, and GC.
* :class:`FaultyDisk` — a :class:`~repro.storage.disk.DiskModel` that
  consults an injector after charging each operation (a failed IO still
  spent its simulated time).
* :class:`RetryPolicy` / :func:`with_retry` — exponential backoff for
  transient errors, priced on the *simulated* clock and counted in
  ``repro.obs`` (``retry`` events, ``faults.retries`` counter).

The layer is strictly opt-in: plain :class:`DiskModel` runs carry no
injector, the store/index bind their raw disk methods, and no charge or
branch is added to the default path (the ``repro all`` byte-identity and
bench gates enforce this).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterator, List, Optional, Tuple

import numpy as np

from repro._util import check_positive
from repro._util.rng import rng_from
from repro.storage.disk import DiskModel


__all__ = [
    "TransientIOError",
    "FatalIOError",
    "SimulatedCrash",
    "RetryPolicy",
    "with_retry",
    "FaultPlan",
    "FaultInjector",
    "FaultyDisk",
    "injector_of",
]


class TransientIOError(RuntimeError):
    """One disk operation failed; a retry may succeed."""

    def __init__(self, op: int, tag: str) -> None:
        super().__init__(f"injected transient IO error at disk op {op} [{tag or 'io'}]")
        self.op = op
        self.tag = tag


class FatalIOError(RuntimeError):
    """A retried operation exhausted its attempts."""


class SimulatedCrash(Exception):
    """Power loss: everything volatile is gone; the durable log survives.

    Raised by the injector *after* the interrupted operation charged its
    simulated time (the crash happened while the head was busy). The
    ``tags`` tuple is the context stack at the crash point (e.g.
    ``("gc", "seal_marker")``) — the chaos report classifies crash sites
    with it.
    """

    def __init__(self, op: int, tags: Tuple[str, ...]) -> None:
        super().__init__(f"simulated crash at disk op {op} [{'.'.join(tags) or 'io'}]")
        self.op = op
        self.tags = tags


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient IO errors.

    Attributes:
        max_attempts: total tries (first attempt included).
        base_delay_s: simulated pause before the first retry.
        multiplier: backoff growth factor per retry.
    """

    max_attempts: int = 4
    base_delay_s: float = 2e-3
    multiplier: float = 4.0

    def __post_init__(self) -> None:
        check_positive("max_attempts", self.max_attempts)
        check_positive("base_delay_s", self.base_delay_s)
        check_positive("multiplier", self.multiplier)


def with_retry(
    disk: DiskModel, policy: RetryPolicy, fn: Callable, op_name: str
) -> Callable:
    """Wrap a disk-charging callable with the retry policy.

    Backoff pauses advance the shared simulated clock (a retrying store
    is a *waiting* store), and every retry is visible to the ambient
    observability session as a ``retry`` event plus the
    ``faults.retries`` counter. :class:`SimulatedCrash` is never retried
    — power loss is not transient.
    """

    def call(*args, **kwargs):
        from repro.obs import get_active

        delay = policy.base_delay_s
        for attempt in range(1, policy.max_attempts + 1):
            try:
                return fn(*args, **kwargs)
            except TransientIOError as exc:
                inj = injector_of(disk)
                if inj is not None:
                    inj.retries += 1
                obs = get_active()
                if obs.enabled:
                    obs.registry.counter("faults.retries").inc()
                    if obs.events.enabled:
                        obs.events.emit(
                            "retry",
                            op=op_name,
                            disk_op=exc.op,
                            attempt=attempt,
                            backoff_s=delay if attempt < policy.max_attempts else 0.0,
                        )
                if attempt == policy.max_attempts:
                    raise FatalIOError(
                        f"{op_name}: gave up after {policy.max_attempts} attempts"
                    ) from exc
                disk.clock.advance(delay)
                delay *= policy.multiplier

    call.__name__ = f"retrying_{op_name}"
    return call


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault schedule.

    Operation indices are 1-based counts of :class:`FaultyDisk`
    read/write calls (retried attempts count as new operations, so a
    burst of consecutive indices exercises the backoff ladder).

    Attributes:
        crash_at: disk op at which power is lost (None = never).
        io_errors: op indices that fail with :class:`TransientIOError`.
        drop_flushes: 1-based *index-flush* counts whose write is
            silently lost (the caller believes it succeeded; the entries
            are only discovered missing after a crash).
    """

    crash_at: Optional[int] = None
    io_errors: FrozenSet[int] = frozenset()
    drop_flushes: FrozenSet[int] = frozenset()

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_ops: int,
        crash_at: Optional[int] = None,
        n_io_errors: int = 0,
        burst: int = 2,
        n_drop_flushes: int = 0,
        n_flushes: int = 0,
    ) -> "FaultPlan":
        """Derive a plan from a seed: ``n_io_errors`` bursts of
        ``burst`` consecutive transient errors spread over ``n_ops``
        operations, plus ``n_drop_flushes`` dropped index flushes out of
        an expected ``n_flushes``."""
        rng = rng_from(seed, "fault-plan")
        errors: List[int] = []
        if n_io_errors and n_ops > 1:
            starts = rng.choice(
                np.arange(1, max(2, n_ops)), size=min(n_io_errors, n_ops - 1), replace=False
            )
            for s in sorted(int(x) for x in starts):
                errors.extend(range(s, s + burst))
        drops: List[int] = []
        if n_drop_flushes and n_flushes:
            picks = rng.choice(
                np.arange(1, n_flushes + 1), size=min(n_drop_flushes, n_flushes), replace=False
            )
            drops = sorted(int(x) for x in picks)
        return cls(
            crash_at=crash_at,
            io_errors=frozenset(errors),
            drop_flushes=frozenset(drops),
        )


class FaultInjector:
    """Interprets a :class:`FaultPlan` against the live operation stream.

    One injector per simulated machine; it is shared by every component
    charging the same :class:`FaultyDisk`. With ``record=True`` it also
    keeps the full op census ``(kind, tags)`` — the chaos harness runs a
    fault-free reference pass in record mode to learn where seals, index
    flushes, and GC operations land before choosing crash points.
    """

    def __init__(self, plan: Optional[FaultPlan] = None, record: bool = False) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self.op_count = 0
        self.flush_count = 0
        self.retries = 0
        self.injected_io_errors = 0
        self.injected_crashes = 0
        self.dropped_flushes = 0
        self.crashed = False
        self.op_log: Optional[List[Tuple[str, Tuple[str, ...]]]] = [] if record else None
        self._tags: List[str] = []

    # -- context tagging -------------------------------------------------

    @contextlib.contextmanager
    def tagged(self, tag: str) -> Iterator[None]:
        """Label operations issued inside the block (``seal``,
        ``seal_marker``, ``index_flush``, ``journal``, ``gc`` ...)."""
        self._tags.append(tag)
        try:
            yield
        finally:
            self._tags.pop()

    @property
    def tags(self) -> Tuple[str, ...]:
        return tuple(self._tags)

    # -- hooks -----------------------------------------------------------

    def after_io(self, kind: str, nbytes: int) -> None:
        """Called by :class:`FaultyDisk` after each charged read/write."""
        self.op_count += 1
        if self.op_log is not None:
            self.op_log.append((kind, self.tags))
        op = self.op_count
        plan = self.plan
        if not self.crashed and plan.crash_at is not None and op == plan.crash_at:
            self.crashed = True
            self.injected_crashes += 1
            self._emit("crash", op)
            raise SimulatedCrash(op, self.tags)
        if op in plan.io_errors:
            self.injected_io_errors += 1
            self._emit("io_error", op)
            raise TransientIOError(op, ".".join(self.tags))

    def take_flush_drop(self) -> bool:
        """Called by the index once per flush; True = this flush's write
        was silently lost (entries stay volatile)."""
        self.flush_count += 1
        if self.flush_count in self.plan.drop_flushes:
            self.dropped_flushes += 1
            self._emit("dropped_flush", self.op_count)
            return True
        return False

    def _emit(self, kind: str, op: int) -> None:
        from repro.obs import get_active

        obs = get_active()
        if not obs.enabled:
            return
        obs.registry.counter(f"faults.injected.{kind}").inc()
        if obs.events.enabled:
            obs.events.emit(
                "fault_injected", kind=kind, disk_op=op, tags=".".join(self.tags)
            )


@dataclass
class FaultyDisk(DiskModel):
    """A :class:`DiskModel` whose operations pass through an injector.

    Charging happens *before* injection: a failed or interrupted
    operation still spent its seek and transfer time, which keeps the
    simulated clock deterministic across retries and crashes.
    """

    injector: FaultInjector = field(default_factory=FaultInjector)

    def read(self, nbytes: int, *, seeks: int = 0) -> float:
        t = super().read(nbytes, seeks=seeks)
        self.injector.after_io("read", nbytes)
        return t

    def write(self, nbytes: int, *, seeks: int = 0) -> float:
        t = super().write(nbytes, seeks=seeks)
        self.injector.after_io("write", nbytes)
        return t


def injector_of(disk: DiskModel) -> Optional[FaultInjector]:
    """The disk's injector, or None for a plain (fault-free) disk."""
    return getattr(disk, "injector", None)
