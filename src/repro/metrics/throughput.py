"""Throughput series extraction."""

from __future__ import annotations

from typing import List, Sequence

from repro.dedup.base import BackupReport


def throughput_series(reports: Sequence[BackupReport]) -> List[float]:
    """Per-generation simulated ingest throughput, bytes/second."""
    return [r.throughput for r in reports]


def mean_throughput(reports: Sequence[BackupReport]) -> float:
    """Aggregate throughput: total logical bytes over total simulated
    time (not the mean of per-generation rates, which over-weights small
    backups)."""
    total_bytes = sum(r.logical_bytes for r in reports)
    total_time = sum(r.elapsed_seconds for r in reports)
    return total_bytes / total_time if total_time else 0.0
