"""SPL distribution analysis over recipes.

The engine computes SPL online against stored *segments*; after the fact,
the same structure can be read off a recipe at container granularity:
for each segment of a backup, the share of its chunks resolved to each
distinct container is the container-level SPL profile. Its distribution
across segments is the fingerprint of de-linearization: healthy layouts
are dominated by segments with one near-1.0 share; decayed layouts show
many small shares per segment.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.storage.recipe import BackupRecipe

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class SegmentShareProfile:
    """Container-share profile of one segment of a recipe.

    Attributes:
        segment_index: ordinal within the recipe.
        n_chunks: chunks in the segment.
        shares: per-distinct-container share of the segment's chunks,
            descending (sums to 1.0).
    """

    segment_index: int
    n_chunks: int
    shares: np.ndarray

    @property
    def max_share(self) -> float:
        """The strongest locality any single container offers — the
        container-granular analog of the paper's max SPL."""
        return float(self.shares[0]) if self.shares.size else 0.0

    @property
    def n_containers(self) -> int:
        return int(self.shares.size)


def segment_share_profiles(
    recipe: BackupRecipe, boundaries: Sequence[int]
) -> List[SegmentShareProfile]:
    """Container-share profiles for each segment of a recipe.

    Args:
        recipe: the backup's chunk map.
        boundaries: chunk-index segment cuts (as produced by a
            :class:`~repro.segmenting.segmenter.Segmenter` on the same
            stream).
    """
    profiles: List[SegmentShareProfile] = []
    bounds = list(boundaries)
    for i in range(len(bounds) - 1):
        a, b = int(bounds[i]), int(bounds[i + 1])
        cids = recipe.containers[a:b]
        n = b - a
        if n <= 0:
            continue
        _, counts = np.unique(cids, return_counts=True)
        shares = np.sort(counts / n)[::-1]
        profiles.append(
            SegmentShareProfile(segment_index=i, n_chunks=n, shares=shares)
        )
    log.debug(
        "segment_share_profiles: gen %d -> %d segments, mean max-share %.3f",
        recipe.generation,
        len(profiles),
        float(np.mean([p.max_share for p in profiles])) if profiles else 0.0,
    )
    return profiles


def max_share_histogram(
    profiles: Sequence[SegmentShareProfile], bins: int = 10
) -> np.ndarray:
    """Histogram of per-segment max shares over [0, 1] — shifts left as
    placement de-linearizes."""
    if not profiles:
        return np.zeros(bins, dtype=np.int64)
    values = [p.max_share for p in profiles]
    hist, _ = np.histogram(values, bins=bins, range=(0.0, 1.0))
    return hist.astype(np.int64)


def mean_containers_per_segment(profiles: Sequence[SegmentShareProfile]) -> float:
    """Average distinct containers per segment (1.0 == perfectly linear)."""
    if not profiles:
        return 0.0
    return float(np.mean([p.n_containers for p in profiles]))
