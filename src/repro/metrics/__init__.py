"""Evaluation metrics over backup/restore reports.

These are the paper's observables, computed from engine reports:

* throughput series (Fig. 2 / Fig. 4),
* deduplication efficiency — per generation, cumulative, and with the
  paper's Fig. 5 partial-sharing-segments accounting,
* compression/storage accounting,
* placement fragmentation and duplicate-locality series.
"""

from repro.metrics.efficiency import (
    cumulative_efficiency,
    efficiency_series,
    kept_redundancy_fraction,
    partial_segment_efficiency,
)
from repro.metrics.throughput import throughput_series, mean_throughput
from repro.metrics.storage import compression_ratio, storage_summary, StorageSummary
from repro.metrics.fragmentation import (
    fragmentation_series,
    locality_series,
)
from repro.metrics.spl_analysis import (
    SegmentShareProfile,
    max_share_histogram,
    mean_containers_per_segment,
    segment_share_profiles,
)

__all__ = [
    "cumulative_efficiency",
    "efficiency_series",
    "kept_redundancy_fraction",
    "partial_segment_efficiency",
    "throughput_series",
    "mean_throughput",
    "compression_ratio",
    "storage_summary",
    "StorageSummary",
    "fragmentation_series",
    "locality_series",
    "SegmentShareProfile",
    "max_share_histogram",
    "mean_containers_per_segment",
    "segment_share_profiles",
]
