"""Deduplication-efficiency metrics (paper Figs. 3 and 5).

The paper defines deduplication efficiency as "the redundant data
actually existing in the dataset divided by the data that is removed" —
operationally, the fraction of true redundancy an engine eliminated. For
Fig. 5 the paper further restricts accounting to segments that share
*part* of their redundant chunks with others ("partial-sharing"
segments), excluding segments whose duplicates are fully covered — both
engines trivially remove those, so they only dilute the comparison.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dedup.base import BackupReport


def _require_truth(report: BackupReport) -> None:
    if report.true_dup_bytes is None:
        raise ValueError(
            f"report gen {report.generation} lacks ground truth; run the "
            "workload with with_ground_truth=True"
        )


def efficiency_series(reports: Sequence[BackupReport]) -> List[float]:
    """Per-generation efficiency (removed / true redundant)."""
    out = []
    for r in reports:
        _require_truth(r)
        out.append(r.efficiency if r.efficiency is not None else 1.0)
    return out


def cumulative_efficiency(reports: Sequence[BackupReport]) -> List[float]:
    """Efficiency of everything ingested up to each generation —
    ``sum(removed) / sum(true)`` prefix-wise. The Fig. 5 endpoint claim
    ("SiLo has 12% of the redundant data not removed [at gen 66] while
    [DeFrag] has only 4%") is cumulative in this sense."""
    removed = 0
    true = 0
    out: List[float] = []
    for r in reports:
        _require_truth(r)
        removed += r.removed_dup_bytes
        true += r.true_dup_bytes or 0
        out.append(removed / true if true else 1.0)
    return out


def kept_redundancy_fraction(reports: Sequence[BackupReport]) -> List[float]:
    """Cumulative fraction of true redundancy *not* removed — SiLo's
    misses, DeFrag's intentional rewrites (``1 - cumulative_efficiency``)."""
    return [1.0 - e for e in cumulative_efficiency(reports)]


def partial_segment_efficiency(
    reports: Sequence[BackupReport], cumulative: bool = True
) -> List[float]:
    """Fig. 5's accounting: efficiency restricted to segments that share
    *some but not all* of their chunks with stored data.

    Fully duplicate segments (every chunk redundant) are excluded, as are
    segments with no redundancy at all.
    """
    removed_acc = 0
    true_acc = 0
    out: List[float] = []
    for r in reports:
        _require_truth(r)
        if r.seg_true_dup_bytes is None or r.seg_fully_dup is None:
            raise ValueError("reports lack per-segment ground truth")
        removed = 0
        true = 0
        for outcome, seg_true, fully in zip(
            r.segments, r.seg_true_dup_bytes, r.seg_fully_dup
        ):
            if seg_true <= 0 or fully:
                continue
            removed += outcome.removed_dup
            true += seg_true
        if cumulative:
            removed_acc += removed
            true_acc += true
            out.append(removed_acc / true_acc if true_acc else 1.0)
        else:
            out.append(removed / true if true else 1.0)
    return out
