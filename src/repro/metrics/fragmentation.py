"""Placement fragmentation and duplicate-locality series.

Two complementary observables of the paper's "de-linearization":

* the **layout** view — fragments per MiB of each backup's recipe (what
  the restore path suffers), and
* the **cache** view — RAM hits bought per prefetched unit during
  ingest (what the dedup throughput suffers), taken from engine extras.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.dedup.base import BackupReport
from repro.storage.layout import analyze_recipe


def fragmentation_series(reports: Sequence[BackupReport]) -> List[float]:
    """Per-generation fragments per MiB (higher == more de-linearized)."""
    return [analyze_recipe(r.recipe).fragments_per_mib for r in reports]


def locality_series(reports: Sequence[BackupReport]) -> List[float]:
    """Per-generation duplicate locality: cache hits per prefetch, from
    engine extras (requires a DDFS- or SiLo-family engine)."""
    out: List[float] = []
    for r in reports:
        if "hits_per_prefetch" not in r.extras:
            raise ValueError(
                f"report gen {r.generation} has no hits_per_prefetch extra"
            )
        out.append(r.extras["hits_per_prefetch"])
    return out
