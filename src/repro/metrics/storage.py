"""Storage/compression accounting across a whole workload."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.dedup.base import BackupReport


@dataclass(frozen=True)
class StorageSummary:
    """Cumulative storage accounting over a run.

    Attributes:
        logical_bytes: all bytes presented to the engine.
        stored_bytes: bytes physically written (new + rewritten).
        removed_bytes: duplicate bytes eliminated by reference.
        rewritten_bytes: duplicates intentionally stored again (DeFrag).
    """

    logical_bytes: int
    stored_bytes: int
    removed_bytes: int
    rewritten_bytes: int

    @property
    def compression_ratio(self) -> float:
        """logical / stored — the paper's "compression ratio" that DeFrag
        sacrifices "a little" of."""
        return self.logical_bytes / self.stored_bytes if self.stored_bytes else float("inf")

    @property
    def rewrite_overhead(self) -> float:
        """Extra storage relative to exact dedup of the same detections:
        rewritten / stored."""
        return self.rewritten_bytes / self.stored_bytes if self.stored_bytes else 0.0


def storage_summary(reports: Sequence[BackupReport]) -> StorageSummary:
    """Aggregate a report sequence into a :class:`StorageSummary`."""
    return StorageSummary(
        logical_bytes=sum(r.logical_bytes for r in reports),
        stored_bytes=sum(r.stored_bytes for r in reports),
        removed_bytes=sum(r.removed_dup_bytes for r in reports),
        rewritten_bytes=sum(r.rewritten_dup_bytes for r in reports),
    )


def compression_ratio(reports: Sequence[BackupReport]) -> float:
    """Cumulative logical/stored ratio over the run."""
    return storage_summary(reports).compression_ratio
