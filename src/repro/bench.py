"""Wall-clock benchmarks of the ingest and restore paths.

The simulator's *reported* numbers are simulated time and cannot change
with Python-level optimizations; this module tracks the one thing that
does change — how long the simulator itself takes to run. It measures

* the fig4 three-engine group workload at the ``small`` scale through
  both ingest paths (the vectorized batch default and the
  chunk-at-a-time scalar reference), and
* the fig6 all-generation restore from a pre-ingested DDFS-Like store
  (the most fragmented layout) through the default reader and the
  FAA + read-ahead reader, and
* byte-level CDC over a fixed random buffer through the Gear
  skip-then-scan fast path and the exact 64-pass reference sweep (plus
  the batch fingerprint fold),

and compares each against a committed baseline so regressions fail
loudly. The chunking gate is double-sided: the fast path must stay
within 2x of its own committed time *and* at least 5x faster than the
committed exact-path rate. Used by ``python -m repro bench`` and
``benchmarks/record.py``; the committed records live in
``BENCH_ingest.json``, ``BENCH_restore.json``, and
``BENCH_chunking.json`` at the repo root.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, Optional

from repro.experiments.common import clear_memo, run_group_workload
from repro.experiments.config import ExperimentConfig

#: default committed-baseline location (repo root)
BASELINE_FILENAME = "BENCH_ingest.json"

#: committed baseline for the restore-path measurement
RESTORE_BASELINE_FILENAME = "BENCH_restore.json"

#: committed baseline for the byte-level chunking measurement
CHUNKING_BASELINE_FILENAME = "BENCH_chunking.json"

#: committed bounded-RSS budget for the out-of-core memory bench
MEMORY_BASELINE_FILENAME = "BENCH_memory.json"

#: committed baseline for the sharded-index measurement
SHARD_BASELINE_FILENAME = "BENCH_shard.json"

#: absolute floor on routed N-shard batched-lookup throughput
#: (fingerprints resolved per wall-clock second); the committed
#: baseline can raise it but the gate never accepts less than this
SHARD_LOOKUP_FLOOR_PER_S = 50_000.0

#: append-only perf trajectory: one compact JSON line per recorded run
#: (grown by ``benchmarks/record.py --append-history``, plotted by
#: ``repro dash``, annotated by ``repro bench``)
HISTORY_FILENAME = "BENCH_history.jsonl"

#: the headline metrics a history line tracks:
#: key -> (display label, unit, True when lower is better)
HISTORY_METRICS: Dict[str, tuple] = {
    "ingest_batch_seconds": ("ingest (batch)", "s", True),
    "restore_seconds": ("restore", "s", True),
    "chunking_mb_per_s": ("chunking", "MB/s", False),
    "peak_rss_mb": ("peak RSS (memory bench)", "MB", True),
}

#: relative change below this reads as noise, not drift
DRIFT_EPSILON = 0.02

#: a fresh measurement this many times slower than the committed
#: baseline's batch time fails the bench gate (2x absorbs machine noise;
#: a de-vectorized ingest path is ~8x)
REGRESSION_FACTOR = 2.0

#: the skip-then-scan chunking path must stay at least this many times
#: faster (MB/s) than the committed exact-path baseline — the point of
#: the fast path; falling below it means the skip/scan structure broke
CHUNKING_SPEEDUP_FLOOR = 5.0


def measure_ingest(
    config: Optional[ExperimentConfig] = None,
    *,
    batch: bool = True,
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` wall-clock seconds for the three-engine group
    ingest (the body of fig4), memo cleared per repetition."""
    cfg = (config or ExperimentConfig.small()).with_(batch=batch)
    best = float("inf")
    for _ in range(max(1, repeats)):
        clear_memo()
        t0 = time.perf_counter()
        run_group_workload(cfg)
        t1 = time.perf_counter()
        best = min(best, t1 - t0)
    clear_memo()
    return best


#: maintenance-phase engines measured as advisory bench rows; the
#: regression gates stay keyed to the classic engines above
MAINTENANCE_BENCH_ENGINES = ("RevDedup", "Hybrid")


def measure_maintenance_ingest(
    name: str,
    config: Optional[ExperimentConfig] = None,
    *,
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` wall-clock seconds ingesting the author
    workload through one maintenance-capable engine with its out-of-line
    pass driven after every generation. Advisory — not gated."""
    from repro.api import create_engine, create_resources
    from repro.dedup.pipeline import run_workload_with_maintenance
    from repro.experiments.common import paper_segmenter
    from repro.workloads.generators import author_fs_20_full

    cfg = config or ExperimentConfig.small()
    best = float("inf")
    for _ in range(max(1, repeats)):
        res = create_resources(cfg)
        engine = create_engine(name, cfg, res)
        jobs = author_fs_20_full(
            fs_bytes=cfg.fs_bytes,
            seed=cfg.seed,
            n_generations=cfg.n_generations,
            churn=cfg.churn_full,
        )
        t0 = time.perf_counter()
        run_workload_with_maintenance(engine, jobs, paper_segmenter())
        best = min(best, time.perf_counter() - t0)
    return best


def measure_phases(config: Optional[ExperimentConfig] = None) -> Dict[str, float]:
    """One *untimed* observability-enabled run of the same workload: the
    per-engine per-phase *simulated*-seconds breakdown. Kept separate
    from :func:`measure_ingest` so the gated wall-clock numbers are
    always measured with observability off."""
    from repro.obs import Observability, Span, obs_session

    cfg = config or ExperimentConfig.small()
    clear_memo()
    try:
        with obs_session(Observability()) as obs:
            run_group_workload(cfg)
    finally:
        clear_memo()
    return {
        span.name: round(span.sim_seconds, 4)
        for span in obs.registry.by_kind(Span)
        if ".phase." in span.name
    }


def measure_parallel(
    config: Optional[ExperimentConfig] = None,
    *,
    jobs: int = 2,
    repeats: int = 3,
) -> float:
    """Best-of wall-clock seconds for the same three-engine group ingest
    decomposed into per-engine cells and run with ``jobs`` workers (the
    ``repro.parallel`` grid path, obs off)."""
    from repro.experiments.fig4 import cells
    from repro.parallel import run_grid

    cfg = (config or ExperimentConfig.small()).with_(batch=True)
    best = float("inf")
    for _ in range(max(1, repeats)):
        clear_memo()
        t0 = time.perf_counter()
        run_grid(cells(cfg), jobs=jobs)
        t1 = time.perf_counter()
        best = min(best, t1 - t0)
    clear_memo()
    return best


def run_bench(
    *, repeats: int = 3, scalar: bool = True, jobs: Optional[int] = None
) -> Dict:
    """Measure the ingest path and return the result record.

    Args:
        repeats: repetitions per measurement (best-of wins).
        scalar: also measure the scalar reference path (slower; the
            ``--quick`` CLI mode skips it).
        jobs: when set (> 1), also measure the parallel grid path with
            that many workers and record the speedup over the serial
            batch measurement.
    """
    config = ExperimentConfig.small()
    result: Dict = {
        "benchmark": "fig4-small group ingest (DeFrag, DDFS-Like, SiLo-Like)",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        "batch_seconds": round(measure_ingest(config, batch=True, repeats=repeats), 4),
    }
    if scalar:
        result["scalar_seconds"] = round(
            measure_ingest(config, batch=False, repeats=repeats), 4
        )
        result["speedup"] = round(result["scalar_seconds"] / result["batch_seconds"], 2)
    if jobs is not None and jobs > 1:
        result["parallel_jobs"] = jobs
        result["parallel_seconds"] = round(
            measure_parallel(config, jobs=jobs, repeats=repeats), 4
        )
        result["parallel_speedup"] = round(
            result["batch_seconds"] / result["parallel_seconds"], 2
        )
    result["maintenance_engines"] = {
        name: round(measure_maintenance_ingest(name, config, repeats=repeats), 4)
        for name in MAINTENANCE_BENCH_ENGINES
    }
    result["phase_seconds"] = measure_phases(config)
    result["manifest"] = _bench_manifest()
    return result


def _bench_manifest() -> Dict:
    """Provenance block every bench record carries (no wall clock — the
    enclosing record already stamps ``recorded_utc`` where it matters)."""
    from repro.obs.manifest import build_manifest

    return build_manifest(wall_clock=False).as_dict()


def chunking_fixture(nbytes: int = 8 * 1024 * 1024, seed: int = 2012) -> bytes:
    """Deterministic random buffer for the chunking measurements."""
    from repro._util import rng_from

    rng = rng_from(seed, "bench-chunking")
    return rng.integers(0, 256, size=int(nbytes), dtype="uint8").tobytes()


def measure_chunking(
    data: bytes, *, exact: bool = False, repeats: int = 3
) -> Dict:
    """Best-of-``repeats`` wall-clock seconds cutting ``data`` with the
    Gear chunker (skip-then-scan fast path, or the exact 64-pass
    reference sweep when ``exact``), plus the cut count and the fast
    path's scanned-byte fraction."""
    from repro.chunking.gear import GearChunker

    chunker = GearChunker(exact=exact)
    best = float("inf")
    boundaries = None
    for _ in range(max(1, repeats)):
        t0 = time.perf_counter()
        boundaries = chunker.cut_boundaries(data)
        best = min(best, time.perf_counter() - t0)
    stats = chunker.last_stats
    assert boundaries is not None and stats is not None
    return {
        "seconds": best,
        "mb_per_s": (len(data) / 1e6) / best,
        "n_chunks": len(boundaries) - 1,
        "scan_fraction": stats.scan_bytes / max(stats.bytes_in, 1),
    }


def run_chunking_bench(
    *, repeats: int = 3, exact: bool = True, nbytes: int = 8 * 1024 * 1024
) -> Dict:
    """Measure the byte-level chunking path and return the result record.

    Args:
        repeats: repetitions per measurement (best-of wins).
        exact: also measure the exact 64-pass reference sweep (slow; the
            ``--quick`` CLI mode skips it — the gate compares against
            the *committed* exact baseline either way).
        nbytes: buffer size; stays fixed so records are comparable.
    """
    from repro.chunking.fingerprint import fingerprint_segments_fast
    from repro.chunking.gear import GearChunker

    data = chunking_fixture(nbytes)
    fast = measure_chunking(data, exact=False, repeats=repeats)
    result: Dict = {
        "benchmark": f"gear CDC over a {nbytes // (1024 * 1024)} MiB random buffer",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        "nbytes": nbytes,
        "seqcdc_seconds": round(fast["seconds"], 4),
        "seqcdc_mb_per_s": round(fast["mb_per_s"], 1),
        "n_chunks": fast["n_chunks"],
        "scan_fraction": round(fast["scan_fraction"], 4),
    }
    if exact:
        ref = measure_chunking(data, exact=True, repeats=repeats)
        result["exact_seconds"] = round(ref["seconds"], 4)
        result["exact_mb_per_s"] = round(ref["mb_per_s"], 1)
        result["speedup"] = round(fast["mb_per_s"] / ref["mb_per_s"], 2)
        result["identical_cuts"] = bool(
            (
                GearChunker().cut_boundaries(data)
                == GearChunker(exact=True).cut_boundaries(data)
            ).all()
        )
    boundaries = GearChunker().cut_boundaries(data)
    t0 = time.perf_counter()
    fingerprint_segments_fast(data, boundaries)
    result["fingerprint_mb_per_s"] = round(
        (len(data) / 1e6) / (time.perf_counter() - t0), 1
    )
    result["manifest"] = _bench_manifest()
    return result


def load_chunking_baseline(path: Optional[Path] = None) -> Optional[Dict]:
    """The committed chunking baseline record, or None when absent."""
    p = Path(path) if path is not None else Path(CHUNKING_BASELINE_FILENAME)
    if not p.is_file():
        return None
    return json.loads(p.read_text())


def check_chunking_regression(
    result: Dict,
    baseline: Dict,
    factor: float = REGRESSION_FACTOR,
    speedup_floor: float = CHUNKING_SPEEDUP_FLOOR,
) -> Optional[str]:
    """None if the chunking measurement holds both gates, else a
    human-readable failure message.

    Gate 1 (regression): fresh skip-then-scan time within ``factor`` of
    the committed skip-then-scan time. Gate 2 (structure): fresh
    skip-then-scan MB/s at least ``speedup_floor`` times the *committed*
    exact-path MB/s — the fast path's reason to exist.
    """
    rec = baseline.get("chunking", baseline)
    base = rec.get("seqcdc_seconds")
    now = result["seqcdc_seconds"]
    if base is not None and now > factor * base:
        return (
            f"chunking wall-clock regressed: {now:.3f}s vs committed "
            f"{base:.3f}s baseline (>{factor:.1f}x)"
        )
    exact_rate = rec.get("exact_mb_per_s")
    if exact_rate is not None:
        rate = result["seqcdc_mb_per_s"]
        if rate < speedup_floor * exact_rate:
            return (
                f"skip-then-scan chunking at {rate:.1f} MB/s is below "
                f"{speedup_floor:.0f}x the committed exact-path rate "
                f"({exact_rate:.1f} MB/s)"
            )
    return None


def restore_fixture(
    config: Optional[ExperimentConfig] = None, engine: str = "DDFS-Like"
):
    """Ingest the fig6 author workload through ``engine`` once; returns
    ``(store, recipes)`` for the restore measurements (ingest cost is
    deliberately outside the timed region). Maintenance-capable engines
    get their out-of-line pass driven per generation, so the recipes
    reflect the post-maintenance layout."""
    from repro.api import create_engine, create_resources, engine_info
    from repro.dedup.pipeline import run_workload, run_workload_with_maintenance
    from repro.experiments.common import paper_segmenter
    from repro.workloads.generators import author_fs_20_full

    cfg = config or ExperimentConfig.small()
    res = create_resources(cfg)
    eng = create_engine(engine, cfg, res)
    jobs = author_fs_20_full(
        fs_bytes=cfg.fs_bytes,
        seed=cfg.seed,
        n_generations=cfg.n_generations,
        churn=cfg.churn_full,
    )
    driver = (
        run_workload_with_maintenance
        if engine_info(engine).supports_maintenance
        else run_workload
    )
    reports = driver(eng, jobs, paper_segmenter())
    return res.store, [r.recipe for r in reports]


def measure_restore(
    store,
    recipes,
    *,
    repeats: int = 3,
    passes: int = 20,
    policy: str = "lru",
    faa_window: int = 0,
    readahead: bool = False,
) -> Dict:
    """Best-of-``repeats`` wall-clock seconds restoring every generation
    ``passes`` times from a pre-ingested store, plus the simulated seek
    total of one pass — the restore analogue of :func:`measure_ingest`.

    A single all-generation restore at the small scale is ~1 ms, far too
    small for a stable 2x gate; ``passes`` inflates the timed region
    into tens of milliseconds without changing what is measured (each
    restore builds a fresh client cache, so passes are independent).
    """
    from repro.restore.reader import RestoreReader

    passes = max(1, passes)
    best = float("inf")
    seeks = 0
    for _ in range(max(1, repeats)):
        reader = RestoreReader(
            store, policy=policy, faa_window=faa_window, readahead=readahead
        )
        t0 = time.perf_counter()
        for _ in range(passes):
            for recipe in recipes:
                reader.restore(recipe)
        best = min(best, time.perf_counter() - t0)
        seeks = reader.stats.seeks // passes
    return {"seconds": best, "sim_seeks": seeks}


def run_restore_bench(*, repeats: int = 3, faa: bool = True) -> Dict:
    """Measure the restore path and return the result record.

    Args:
        repeats: repetitions per measurement (best-of wins).
        faa: also measure the FAA + read-ahead reader (the ``--quick``
            CLI mode skips it).
    """
    config = ExperimentConfig.small()
    store, recipes = restore_fixture(config)
    default = measure_restore(store, recipes, repeats=repeats)
    result: Dict = {
        "benchmark": "fig6-small DDFS-Like all-generation restore",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        "restore_seconds": round(default["seconds"], 4),
        "sim_seeks": default["sim_seeks"],
    }
    if faa:
        assembled = measure_restore(
            store,
            recipes,
            repeats=repeats,
            faa_window=2048,
            readahead=True,
        )
        result["faa_seconds"] = round(assembled["seconds"], 4)
        result["faa_sim_seeks"] = assembled["sim_seeks"]
        result["sim_seek_reduction"] = round(
            default["sim_seeks"] / max(assembled["sim_seeks"], 1), 2
        )
    result["maintenance_restore"] = {}
    for name in MAINTENANCE_BENCH_ENGINES:
        m_store, m_recipes = restore_fixture(config, engine=name)
        measured = measure_restore(m_store, m_recipes, repeats=repeats)
        result["maintenance_restore"][name] = {
            "restore_seconds": round(measured["seconds"], 4),
            "sim_seeks": measured["sim_seeks"],
        }
    result["manifest"] = _bench_manifest()
    return result


def load_restore_baseline(path: Optional[Path] = None) -> Optional[Dict]:
    """The committed restore baseline record, or None when absent."""
    p = Path(path) if path is not None else Path(RESTORE_BASELINE_FILENAME)
    if not p.is_file():
        return None
    return json.loads(p.read_text())


def check_restore_regression(
    result: Dict, baseline: Dict, factor: float = REGRESSION_FACTOR
) -> Optional[str]:
    """None if ``result`` is within ``factor`` of the baseline's restore
    time, else a human-readable failure message."""
    base = baseline.get("restore", baseline).get("restore_seconds")
    if base is None:
        return None
    now = result["restore_seconds"]
    if now > factor * base:
        return (
            f"restore wall-clock regressed: {now:.3f}s vs committed "
            f"{base:.3f}s baseline (>{factor:.1f}x)"
        )
    return None


def load_baseline(path: Optional[Path] = None) -> Optional[Dict]:
    """The committed baseline record, or None when absent."""
    p = Path(path) if path is not None else Path(BASELINE_FILENAME)
    if not p.is_file():
        return None
    return json.loads(p.read_text())


# -- bounded-RSS memory bench ------------------------------------------------


def run_memory_bench(
    scale: str = "xlarge",
    *,
    generations: Optional[int] = None,
    resident_containers: int = 64,
    timeout_s: float = 3600.0,
) -> Dict:
    """Run the out-of-core probe in a **fresh subprocess** and return its
    record (the dict ``python -m repro.memory`` prints).

    A subprocess is load-bearing, not a convenience: ``ru_maxrss`` is a
    process-lifetime high-water mark, so measuring in-process would
    report whatever the parent had already allocated (other benches,
    memoized workloads) instead of the out-of-core pipeline's footprint.
    """
    import subprocess
    import sys

    cmd = [
        sys.executable,
        "-m",
        "repro.memory",
        "--scale",
        scale,
        "--resident-containers",
        str(int(resident_containers)),
    ]
    if generations is not None:
        cmd += ["--generations", str(int(generations))]
    proc = subprocess.run(
        cmd, capture_output=True, text=True, timeout=timeout_s
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"memory probe failed (exit {proc.returncode}):\n{proc.stderr}"
        )
    record = json.loads(proc.stdout)
    record["manifest"] = _bench_manifest()
    return record


def load_memory_baseline(path: Optional[Path] = None) -> Optional[Dict]:
    """The committed memory budget record, or None when absent."""
    p = Path(path) if path is not None else Path(MEMORY_BASELINE_FILENAME)
    if not p.is_file():
        return None
    return json.loads(p.read_text())


def check_memory_regression(result: Dict, baseline: Dict) -> Optional[str]:
    """The bounded-RSS gate (absolute budget, not a regression factor —
    see :func:`repro.memory.check_memory_gate`)."""
    from repro.memory import check_memory_gate

    return check_memory_gate(result, baseline)


def run_shard_bench(
    *,
    repeats: int = 3,
    n_shards: int = 4,
    n_entries: int = 50_000,
    batch: int = 4096,
) -> Dict:
    """Measure the sharded index and return the result record.

    Two halves, matching the two halves of the gate:

    * **identity** — a deterministic mixed lookup/insert workload is
      driven through a plain ``DiskChunkIndex`` and a 1-shard
      ``ShardedChunkIndex`` built with identical parameters; answers,
      stats, and the simulated clock must match exactly
      (``one_shard_identical``).
    * **throughput** — ``n_entries`` fingerprints are inserted into an
      ``n_shards``-shard index, then resolved in ``batch``-sized
      ``lookup_many`` calls (half hits, half misses); best-of
      ``repeats`` wall-clock gives ``lookup_per_s``.
    """
    from repro._util.rng import rng_from
    from repro.index.full_index import ChunkLocation, DiskChunkIndex
    from repro.sharding import ShardedChunkIndex
    from repro.storage.disk import DiskModel

    config = ExperimentConfig.small()

    # -- identity half ---------------------------------------------------
    rng = rng_from(2012, "shard-bench")
    fps = [int(x) for x in rng.integers(1, 1 << 60, size=4096)]

    def drive(index) -> tuple:
        answers = []
        for i in range(0, len(fps), 256):
            chunk = fps[i : i + 256]
            answers.append(
                [loc is not None for loc in index.lookup_many(chunk)]
            )
            index.insert_many(
                chunk, [ChunkLocation(i % 7, j) for j in range(len(chunk))]
            )
            index.flush()
        answers.append([loc is not None for loc in index.lookup_many(fps)])
        return answers, dict(vars(index.stats)), index.disk.stats.total_time_s

    plain = drive(DiskChunkIndex(DiskModel(profile=config.disk), expected_entries=n_entries))
    one = drive(
        ShardedChunkIndex.create(
            DiskModel(profile=config.disk), n_shards=1, expected_entries=n_entries
        )
    )
    one_shard_identical = plain == one

    # -- throughput half -------------------------------------------------
    sharded = ShardedChunkIndex.create(
        DiskModel(profile=config.disk),
        n_shards=n_shards,
        expected_entries=n_entries,
    )
    rng = rng_from(2012, "shard-bench-load")
    load = [int(x) for x in rng.integers(1, 1 << 60, size=n_entries)]
    for i in range(0, n_entries, batch):
        chunk = load[i : i + batch]
        sharded.insert_many(chunk, [ChunkLocation(0, j) for j in range(len(chunk))])
    sharded.flush()
    probes = load[: n_entries // 2] + [
        int(x) for x in rng.integers(1 << 61, 1 << 62, size=n_entries // 2)
    ]
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        hits = 0
        for i in range(0, len(probes), batch):
            for loc in sharded.lookup_many(probes[i : i + batch]):
                if loc is not None:
                    hits += 1
        best = min(best, time.perf_counter() - t0)
    assert hits == n_entries // 2

    return {
        "benchmark": f"{n_shards}-shard routed index, {n_entries} entries",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        "n_shards": n_shards,
        "n_entries": n_entries,
        "batch": batch,
        "one_shard_identical": bool(one_shard_identical),
        "lookup_seconds": round(best, 4),
        "lookup_per_s": round(len(probes) / best, 1),
        "fill_balance": round(
            sharded.router.fill_balance(sharded.shard_fill()), 4
        ),
        "manifest": _bench_manifest(),
    }


def load_shard_baseline(path: Optional[Path] = None) -> Optional[Dict]:
    """The committed shard baseline record, or None when absent."""
    p = Path(path) if path is not None else Path(SHARD_BASELINE_FILENAME)
    if not p.is_file():
        return None
    return json.loads(p.read_text())


def check_shard_regression(
    result: Dict,
    baseline: Dict,
    factor: float = REGRESSION_FACTOR,
    floor: float = SHARD_LOOKUP_FLOOR_PER_S,
) -> Optional[str]:
    """None if the shard measurement holds all three gates, else a
    failure message.

    Gate 1 (identity): the 1-shard wrapper must be byte-identical to
    the plain index — answers, stats, and simulated clock. Gate 2
    (floor): routed lookup throughput must clear the absolute
    ``floor`` (the baseline may pin a higher one). Gate 3 (regression):
    lookup wall-clock within ``factor`` of the committed baseline.
    """
    if not result.get("one_shard_identical", False):
        return (
            "1-shard ShardedChunkIndex diverged from the plain "
            "DiskChunkIndex (answers, stats, or simulated clock)"
        )
    rec = baseline.get("shard", baseline)
    floor = max(floor, float(rec.get("lookup_floor_per_s", 0.0)))
    rate = float(result["lookup_per_s"])
    if rate < floor:
        return (
            f"routed lookup throughput {rate:.0f}/s is below the "
            f"{floor:.0f}/s floor"
        )
    base = rec.get("lookup_seconds")
    now = result["lookup_seconds"]
    if base is not None and now > factor * base:
        return (
            f"sharded lookup wall-clock regressed: {now:.3f}s vs "
            f"committed {base:.3f}s baseline (>{factor:.1f}x)"
        )
    return None


def reference_summary(baseline: Dict) -> str:
    """One line describing the committed baseline's reference
    measurement, or a warning when the baseline predates the reference
    block (older records lack it; that's not an error)."""
    ref = baseline.get("reference")
    if not isinstance(ref, dict):
        return (
            "note: baseline has no reference block "
            "(re-record with benchmarks/record.py to add one)"
        )
    label = ref.get("label", "reference")
    commit = ref.get("commit")
    where = f" @ {commit}" if commit else ""
    speedup = ref.get("workload_speedup")
    vs = f", workload speedup {speedup}x vs it" if speedup is not None else ""
    return f"reference: {label}{where}{vs}"


def check_regression(
    result: Dict, baseline: Dict, factor: float = REGRESSION_FACTOR
) -> Optional[str]:
    """None if ``result`` is within ``factor`` of the baseline's batch
    time, else a human-readable failure message."""
    base = baseline.get("ingest", baseline).get("batch_seconds")
    if base is None:
        return None
    now = result["batch_seconds"]
    if now > factor * base:
        return (
            f"ingest wall-clock regressed: {now:.3f}s vs committed "
            f"{base:.3f}s baseline (>{factor:.1f}x)"
        )
    return None


# -- perf-trajectory history ------------------------------------------------


def history_record(
    ingest: Optional[Dict] = None,
    restore: Optional[Dict] = None,
    chunking: Optional[Dict] = None,
    memory: Optional[Dict] = None,
    manifest: Optional[Dict] = None,
) -> Dict:
    """One compact history line from full bench records.

    Only the headline numbers survive (``HISTORY_METRICS`` plus a few
    secondary figures) so the file stays a few hundred bytes per run
    while the dashboard can still plot every trajectory.
    """
    out: Dict = {}
    if manifest:
        out.update(manifest)
    if ingest:
        out["ingest_batch_seconds"] = ingest.get("batch_seconds")
        if "scalar_seconds" in ingest:
            out["ingest_scalar_seconds"] = ingest["scalar_seconds"]
        if "speedup" in ingest:
            out["ingest_speedup"] = ingest["speedup"]
    if restore:
        out["restore_seconds"] = restore.get("restore_seconds")
        if "faa_seconds" in restore:
            out["restore_faa_seconds"] = restore["faa_seconds"]
    if chunking:
        out["chunking_mb_per_s"] = chunking.get("seqcdc_mb_per_s")
        if "speedup" in chunking:
            out["chunking_speedup"] = chunking["speedup"]
    if memory:
        out["peak_rss_mb"] = memory.get("peak_rss_mb")
        if "logical_bytes" in memory:
            out["memory_logical_bytes"] = memory["logical_bytes"]
    return out


def load_history(path: Optional[Path] = None) -> list:
    """Every history line, oldest first ([] when the file is absent).
    Malformed lines are skipped — the file is append-only and a crashed
    append must not brick every later reader."""
    p = Path(path) if path is not None else Path(HISTORY_FILENAME)
    if not p.is_file():
        return []
    out = []
    for line in p.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            out.append(record)
    return out


def append_history(record: Dict, path: Optional[Path] = None) -> Path:
    """Append one record as a single JSON line; returns the file path."""
    p = Path(path) if path is not None else Path(HISTORY_FILENAME)
    with p.open("a") as fh:
        json.dump(record, fh, separators=(",", ":"))
        fh.write("\n")
    return p


def drift_summary(
    current: Dict, history: list, epsilon: float = DRIFT_EPSILON
) -> list:
    """Human-readable drift lines: each headline metric in ``current``
    (a dict of history-record keys) against the most recent history
    entry that has it. Direction words respect the metric's polarity
    (lower seconds good, higher MB/s good); changes within ``epsilon``
    read as steady. Empty when there is no history to compare against.
    """
    lines = []
    for key, (label, unit, lower_is_better) in HISTORY_METRICS.items():
        now = current.get(key)
        if now is None:
            continue
        prev = None
        for record in reversed(history):
            if record.get(key) is not None:
                prev = record[key]
                break
        if not prev:
            continue
        rel = (now - prev) / prev
        if abs(rel) <= epsilon:
            direction = "steady"
        elif (rel < 0) == lower_is_better:
            direction = "improving"
        else:
            direction = "regressing"
        lines.append(
            f"{label}: {now:g}{unit} vs {prev:g}{unit} last recorded "
            f"({rel:+.1%}, {direction})"
        )
    return lines
