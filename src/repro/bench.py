"""Wall-clock benchmark of the ingest path (batch vs scalar).

The simulator's *reported* numbers are simulated time and cannot change
with Python-level optimizations; this module tracks the one thing that
does change — how long the simulator itself takes to run. It measures
the fig4 three-engine group workload at the ``small`` scale through both
ingest paths (the vectorized batch default and the chunk-at-a-time
scalar reference) and compares against a committed baseline so
regressions fail loudly.

Used by ``python -m repro bench`` and ``benchmarks/record.py``; the
committed record lives in ``BENCH_ingest.json`` at the repo root.
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Dict, Optional

from repro.experiments.common import clear_memo, run_group_workload
from repro.experiments.config import ExperimentConfig

#: default committed-baseline location (repo root)
BASELINE_FILENAME = "BENCH_ingest.json"

#: a fresh measurement this many times slower than the committed
#: baseline's batch time fails the bench gate (2x absorbs machine noise;
#: a de-vectorized ingest path is ~8x)
REGRESSION_FACTOR = 2.0


def measure_ingest(
    config: Optional[ExperimentConfig] = None,
    *,
    batch: bool = True,
    repeats: int = 3,
) -> float:
    """Best-of-``repeats`` wall-clock seconds for the three-engine group
    ingest (the body of fig4), memo cleared per repetition."""
    cfg = (config or ExperimentConfig.small()).with_(batch=batch)
    best = float("inf")
    for _ in range(max(1, repeats)):
        clear_memo()
        t0 = time.perf_counter()
        run_group_workload(cfg)
        t1 = time.perf_counter()
        best = min(best, t1 - t0)
    clear_memo()
    return best


def measure_phases(config: Optional[ExperimentConfig] = None) -> Dict[str, float]:
    """One *untimed* observability-enabled run of the same workload: the
    per-engine per-phase *simulated*-seconds breakdown. Kept separate
    from :func:`measure_ingest` so the gated wall-clock numbers are
    always measured with observability off."""
    from repro.obs import Observability, Span, obs_session

    cfg = config or ExperimentConfig.small()
    clear_memo()
    try:
        with obs_session(Observability()) as obs:
            run_group_workload(cfg)
    finally:
        clear_memo()
    return {
        span.name: round(span.sim_seconds, 4)
        for span in obs.registry.by_kind(Span)
        if ".phase." in span.name
    }


def measure_parallel(
    config: Optional[ExperimentConfig] = None,
    *,
    jobs: int = 2,
    repeats: int = 3,
) -> float:
    """Best-of wall-clock seconds for the same three-engine group ingest
    decomposed into per-engine cells and run with ``jobs`` workers (the
    ``repro.parallel`` grid path, obs off)."""
    from repro.experiments.fig4 import cells
    from repro.parallel import run_grid

    cfg = (config or ExperimentConfig.small()).with_(batch=True)
    best = float("inf")
    for _ in range(max(1, repeats)):
        clear_memo()
        t0 = time.perf_counter()
        run_grid(cells(cfg), jobs=jobs)
        t1 = time.perf_counter()
        best = min(best, t1 - t0)
    clear_memo()
    return best


def run_bench(
    *, repeats: int = 3, scalar: bool = True, jobs: Optional[int] = None
) -> Dict:
    """Measure the ingest path and return the result record.

    Args:
        repeats: repetitions per measurement (best-of wins).
        scalar: also measure the scalar reference path (slower; the
            ``--quick`` CLI mode skips it).
        jobs: when set (> 1), also measure the parallel grid path with
            that many workers and record the speedup over the serial
            batch measurement.
    """
    config = ExperimentConfig.small()
    result: Dict = {
        "benchmark": "fig4-small group ingest (DeFrag, DDFS-Like, SiLo-Like)",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeats": repeats,
        "batch_seconds": round(measure_ingest(config, batch=True, repeats=repeats), 4),
    }
    if scalar:
        result["scalar_seconds"] = round(
            measure_ingest(config, batch=False, repeats=repeats), 4
        )
        result["speedup"] = round(result["scalar_seconds"] / result["batch_seconds"], 2)
    if jobs is not None and jobs > 1:
        result["parallel_jobs"] = jobs
        result["parallel_seconds"] = round(
            measure_parallel(config, jobs=jobs, repeats=repeats), 4
        )
        result["parallel_speedup"] = round(
            result["batch_seconds"] / result["parallel_seconds"], 2
        )
    result["phase_seconds"] = measure_phases(config)
    return result


def load_baseline(path: Optional[Path] = None) -> Optional[Dict]:
    """The committed baseline record, or None when absent."""
    p = Path(path) if path is not None else Path(BASELINE_FILENAME)
    if not p.is_file():
        return None
    return json.loads(p.read_text())


def reference_summary(baseline: Dict) -> str:
    """One line describing the committed baseline's reference
    measurement, or a warning when the baseline predates the reference
    block (older records lack it; that's not an error)."""
    ref = baseline.get("reference")
    if not isinstance(ref, dict):
        return (
            "note: baseline has no reference block "
            "(re-record with benchmarks/record.py to add one)"
        )
    label = ref.get("label", "reference")
    commit = ref.get("commit")
    where = f" @ {commit}" if commit else ""
    speedup = ref.get("workload_speedup")
    vs = f", workload speedup {speedup}x vs it" if speedup is not None else ""
    return f"reference: {label}{where}{vs}"


def check_regression(
    result: Dict, baseline: Dict, factor: float = REGRESSION_FACTOR
) -> Optional[str]:
    """None if ``result`` is within ``factor`` of the baseline's batch
    time, else a human-readable failure message."""
    base = baseline.get("ingest", baseline).get("batch_seconds")
    if base is None:
        return None
    now = result["batch_seconds"]
    if now > factor * base:
        return (
            f"ingest wall-clock regressed: {now:.3f}s vs committed "
            f"{base:.3f}s baseline (>{factor:.1f}x)"
        )
    return None
