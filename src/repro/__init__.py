"""repro — reproduction of "Reducing The De-linearization of Data
Placement to Improve Deduplication Performance" (Tan, Yan, Feng, Sha;
SC 2012).

Quickstart::

    from repro import (
        DeFragEngine, DDFSEngine, EngineResources,
        ContentDefinedSegmenter, run_workload, author_fs_20_full,
    )

    segmenter = ContentDefinedSegmenter()
    engine = DeFragEngine(EngineResources.create())
    reports = run_workload(engine, author_fs_20_full(), segmenter)
    for r in reports:
        print(r.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.api import (
    BackupSession,
    EngineInfo,
    create_engine,
    create_resources,
    engine_info,
    engine_infos,
    engine_names,
    register_engine,
)
from repro.chunking import (
    Chunk,
    ChunkStream,
    FixedChunker,
    GearChunker,
    RabinChunker,
)
from repro.core import (
    AlwaysRewritePolicy,
    CappingPolicy,
    DeFragEngine,
    NeverRewritePolicy,
    RewritePolicy,
    SPLProfile,
    SPLThresholdPolicy,
    spl_profile,
)
from repro.dedup import (
    BackupReport,
    CostModel,
    DDFSEngine,
    DedupEngine,
    EngineResources,
    ExactEngine,
    GroundTruth,
    HybridEngine,
    IDedupEngine,
    MaintenanceReport,
    RevDedupEngine,
    SiLoEngine,
    SparseIndexEngine,
    ingest_bytes,
    run_backup,
    run_workload,
    run_workload_with_maintenance,
)
from repro.restore import RestoreReader, RestoreReport, read_time_eq1
from repro.segmenting import ContentDefinedSegmenter, FixedSegmenter, Segment
from repro.storage import (
    BackupRecipe,
    ContainerStore,
    DiskModel,
    DiskProfile,
    GarbageCollector,
    GCReport,
    HDD_2012,
    LayoutReport,
    NEARLINE_HDD,
    RecoveryReport,
    RecoveryScanner,
    SSD_SATA,
    StoreConfig,
    analyze_recipe,
)
from repro.workloads import (
    BackupJob,
    ChurnProfile,
    FileSystemModel,
    author_fs_20_full,
    group_fs_66,
    single_user_stream,
)

__version__ = "1.0.0"

__all__ = [
    "BackupSession",
    "EngineInfo",
    "create_engine",
    "create_resources",
    "engine_info",
    "engine_infos",
    "engine_names",
    "register_engine",
    "Chunk",
    "ChunkStream",
    "FixedChunker",
    "GearChunker",
    "RabinChunker",
    "AlwaysRewritePolicy",
    "CappingPolicy",
    "DeFragEngine",
    "NeverRewritePolicy",
    "RewritePolicy",
    "SPLProfile",
    "SPLThresholdPolicy",
    "spl_profile",
    "BackupReport",
    "CostModel",
    "DDFSEngine",
    "DedupEngine",
    "EngineResources",
    "ExactEngine",
    "GroundTruth",
    "HybridEngine",
    "IDedupEngine",
    "MaintenanceReport",
    "RevDedupEngine",
    "SiLoEngine",
    "SparseIndexEngine",
    "ingest_bytes",
    "run_backup",
    "run_workload",
    "run_workload_with_maintenance",
    "RestoreReader",
    "RestoreReport",
    "read_time_eq1",
    "ContentDefinedSegmenter",
    "FixedSegmenter",
    "Segment",
    "BackupRecipe",
    "ContainerStore",
    "DiskModel",
    "DiskProfile",
    "GarbageCollector",
    "GCReport",
    "HDD_2012",
    "NEARLINE_HDD",
    "SSD_SATA",
    "StoreConfig",
    "RecoveryReport",
    "RecoveryScanner",
    "LayoutReport",
    "analyze_recipe",
    "BackupJob",
    "ChurnProfile",
    "FileSystemModel",
    "author_fs_20_full",
    "group_fs_66",
    "single_user_stream",
    "__version__",
]
