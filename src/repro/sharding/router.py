"""Consistent-hash routing of fingerprints to shards.

The router is a pure function of ``(n_shards, vnodes)``: each shard
plants ``vnodes`` points on a 64-bit ring (blake2b over a stable label,
so the ring is identical in every process and Python version), and a
fingerprint belongs to the shard owning the first ring point at or
after its hashed position.

Fingerprints are mixed through one splitmix64 round before the ring
search so structured fingerprint spaces (sequential synthetic ids,
tenant-salted namespaces) spread evenly; the mix is the same bijection
:mod:`repro.chunking.fingerprint` uses, so it is vectorizable for batch
routing.

Routing invariants (property-locked by
``tests/properties/test_shard_equivalence.py``):

* **partition** — every fingerprint maps to exactly one shard, and
  :meth:`ShardRouter.partition` splits a batch into per-shard runs that
  cover the batch exactly once;
* **stability** — ``shard_of`` is a pure function of the fingerprint
  and the ring parameters: the same fp routes identically across
  processes, interpreter restarts, and batch vs scalar paths;
* **degeneracy** — with one shard the ring is bypassed entirely, so a
  1-shard index drives its single shard verbatim.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["ShardRouter"]


def _ring_point(shard: int, replica: int) -> int:
    """A full-width 64-bit ring position for one vnode (blake2b over a
    stable label — process- and version-stable, unlike ``hash()``; the
    63-bit :func:`~repro._util.rng.derive_seed` would leave the ring's
    top half empty and skew the partition)."""
    h = hashlib.blake2b(digest_size=8)
    h.update(f"shard-ring\x1f{shard}\x1f{replica}".encode())
    return int.from_bytes(h.digest(), "little")

#: splitmix64 mixing constants (same finalizer the fingerprint fold uses)
_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_U64 = np.uint64(0xFFFFFFFFFFFFFFFF)


def _mix(x: np.ndarray) -> np.ndarray:
    """splitmix64 finalizer over a uint64 array (vectorized)."""
    x = (x ^ (x >> np.uint64(30))) * _M1
    x = (x ^ (x >> np.uint64(27))) * _M2
    return x ^ (x >> np.uint64(31))


def _mix_scalar(x: int) -> int:
    x &= 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class ShardRouter:
    """Maps fingerprints to shard ids over a consistent-hash ring."""

    def __init__(self, n_shards: int, vnodes: int = 128) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.n_shards = int(n_shards)
        self.vnodes = int(vnodes)
        points: List[Tuple[int, int]] = []
        for shard in range(self.n_shards):
            for replica in range(self.vnodes):
                points.append((_ring_point(shard, replica), shard))
        points.sort()
        self._points = np.array([p for p, _ in points], dtype=np.uint64)
        self._owners = np.array([s for _, s in points], dtype=np.int64)
        self._points_list = [p for p, _ in points]
        self._owners_list = [s for _, s in points]

    def shard_of(self, fp: int) -> int:
        """The owning shard of one fingerprint (pure, process-stable)."""
        if self.n_shards == 1:
            return 0
        key = _mix_scalar(int(fp))
        # first ring point at or after the key, wrapping at the top
        i = bisect.bisect_left(self._points_list, key)
        if i == len(self._points_list):
            i = 0
        return self._owners_list[i]

    def route_many(self, fps: Sequence[int]) -> np.ndarray:
        """Owning shard of every fingerprint in a batch (vectorized)."""
        arr = np.asarray(fps, dtype=np.uint64)
        if self.n_shards == 1:
            return np.zeros(len(arr), dtype=np.int64)
        keys = _mix(arr & _U64)
        idx = np.searchsorted(self._points, keys, side="left")
        idx[idx == len(self._points)] = 0
        return self._owners[idx]

    def partition(
        self, fps: Sequence[int]
    ) -> Dict[int, Tuple[List[int], List[int]]]:
        """Split a batch into per-shard runs, preserving in-shard order.

        Returns ``{shard: (positions, fingerprints)}`` where
        ``positions`` index into the input batch; the position lists of
        all shards are disjoint and cover ``range(len(fps))`` exactly —
        the partition invariant the property suite pins.
        """
        owners = self.route_many(fps)
        out: Dict[int, Tuple[List[int], List[int]]] = {}
        for pos, (fp, shard) in enumerate(zip(fps, owners)):
            entry = out.get(int(shard))
            if entry is None:
                entry = out[int(shard)] = ([], [])
            entry[0].append(pos)
            entry[1].append(int(fp))
        return out

    def fill_balance(self, counts: Sequence[int]) -> float:
        """Max/mean shard fill ratio (1.0 = perfectly even)."""
        counts = list(counts)
        total = sum(counts)
        if total == 0 or not counts:
            return 1.0
        mean = total / len(counts)
        return max(counts) / mean
