"""``repro.sharding`` — the sharded, multi-tenant fingerprint plane.

ROADMAP item 1's answer to "one stream, one in-process index": a
consistent-hash–routed ensemble of :class:`~repro.index.full_index
.DiskChunkIndex` shards behind the exact single-index interface
(:class:`ShardedChunkIndex`), per-tenant fingerprint namespaces with
tenant-aware container placement (:class:`TenantNamespace` /
:class:`TenantStoreSet`), a round-robin multi-tenant ingest front-end
that folds every stream's cache misses into batched per-shard calls
(:class:`IngestFrontend`), and a process-pool deployment with
per-shard spill directories and journal recovery
(:class:`ShardWorkerPool`).

See DESIGN.md §18 for the routing invariants and the recovery story;
the HPDedup-style cache-allocation experiment built on this package
lives in :mod:`repro.experiments.tenants`.
"""

from repro.sharding.config import ShardConfig
from repro.sharding.frontend import (
    GlobalLRUAllocator,
    IngestFrontend,
    PrioritizedAllocator,
    TenantReport,
    TenantStream,
)
from repro.sharding.index import ShardedChunkIndex
from repro.sharding.pool import ShardWorkerPool
from repro.sharding.router import ShardRouter
from repro.sharding.tenancy import TenantNamespace, TenantStoreSet

__all__ = [
    "ShardConfig",
    "ShardRouter",
    "ShardedChunkIndex",
    "TenantNamespace",
    "TenantStoreSet",
    "IngestFrontend",
    "TenantStream",
    "TenantReport",
    "GlobalLRUAllocator",
    "PrioritizedAllocator",
    "ShardWorkerPool",
]
