"""Shard-plane configuration (kept dependency-free so
:mod:`repro.experiments.config` can embed it without import cycles)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ShardConfig:
    """How the fingerprint index is split across shards.

    Attributes:
        n_shards: shard count. 1 is the degenerate case: a single
            wrapped :class:`~repro.index.full_index.DiskChunkIndex`
            driven verbatim, byte-identical to the unsharded substrate
            (the bench gate pins this).
        vnodes: virtual nodes per shard on the consistent-hash ring.
            More vnodes flatten the key-space imbalance between shards;
            the default keeps the max/mean shard fill under ~1.15 at 8
            shards.
        spill_root: root directory for per-shard durable state (each
            shard worker owns ``spill_root/shard-<k>``); ``None`` keeps
            shard journals in memory. Only the process-pool deployment
            (:class:`~repro.sharding.pool.ShardWorkerPool`) touches the
            filesystem — the in-process index never does.
    """

    n_shards: int = 1
    vnodes: int = 128
    spill_root: Optional[str] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {self.vnodes}")
