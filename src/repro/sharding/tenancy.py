"""Per-tenant namespaces and tenant-aware container placement.

A tenant namespace is a stable bijection of the 64-bit fingerprint
space: tenant ``t``'s chunk ``fp`` is indexed under
``splitmix64(fp XOR salt_t)`` where ``salt_t`` is a blake2b-derived
per-tenant constant. Two tenants ingesting the *same* bytes therefore
occupy disjoint index keys — cross-tenant dedup is structurally
impossible with isolation on, which is the isolation guarantee the
tenancy tests pin (no shared index entries, no shared containers).

Container placement follows the namespace: :class:`TenantStoreSet`
gives each tenant its own :class:`~repro.storage.store.ContainerStore`
over the shared disk (tenant-aware placement — a tenant's chunks never
share a container with another tenant's), while all stores charge the
same simulated disk, so cross-tenant contention still shows up in the
clock.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro._util.rng import derive_seed
from repro.sharding.router import _mix, _mix_scalar
from repro.storage.store import ContainerStore, StoreConfig

__all__ = ["TenantNamespace", "TenantStoreSet"]

_U64 = np.uint64(0xFFFFFFFFFFFFFFFF)


class TenantNamespace:
    """One tenant's view of the fingerprint space.

    Args:
        name: tenant id (any stable string).
        isolated: when False the namespace is the identity map — all
            tenants share one fingerprint space (global dedup), the
            single-tenant behavior.
    """

    def __init__(self, name: str, isolated: bool = True) -> None:
        self.name = name
        self.isolated = isolated
        # blake2b-derived: stable across processes and Python versions
        self.salt = derive_seed(0, "tenant-namespace", name) if isolated else 0

    def wrap(self, fp: int) -> int:
        """Namespace one fingerprint (identity when not isolated)."""
        if not self.isolated:
            return int(fp)
        return _mix_scalar(int(fp) ^ self.salt)

    def wrap_many(self, fps) -> np.ndarray:
        """Namespace a fingerprint batch (vectorized)."""
        arr = np.asarray(fps, dtype=np.uint64)
        if not self.isolated:
            return arr
        return _mix((arr ^ np.uint64(self.salt)) & _U64)


class TenantStoreSet:
    """Tenant-aware container placement: one store per tenant, one disk.

    With ``isolated=False`` every tenant resolves to one shared store —
    the classic single-namespace layout.
    """

    def __init__(
        self,
        disk,
        config: StoreConfig,
        isolated: bool = True,
    ) -> None:
        self.disk = disk
        self.config = config
        self.isolated = isolated
        self._stores: Dict[str, ContainerStore] = {}
        self._shared: Optional[ContainerStore] = None

    def store_for(self, tenant: str) -> ContainerStore:
        if not self.isolated:
            if self._shared is None:
                self._shared = ContainerStore(self.disk, config=self.config)
            return self._shared
        store = self._stores.get(tenant)
        if store is None:
            store = self._stores[tenant] = ContainerStore(
                self.disk, config=self.config
            )
        return store

    def items(self) -> Iterator[Tuple[str, ContainerStore]]:
        if not self.isolated:
            if self._shared is not None:
                yield "*", self._shared
            return
        yield from sorted(self._stores.items())
