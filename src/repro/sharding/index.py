"""The sharded fingerprint index behind the ``DiskChunkIndex`` contract.

``ShardedChunkIndex`` partitions the fingerprint space across N
:class:`~repro.index.full_index.DiskChunkIndex` shards with a
:class:`~repro.sharding.router.ShardRouter` and re-presents the whole
ensemble through the exact interface engines already consume — lookups,
batched lookups, inserts/updates, the out-of-line sorted sweep, the
journaled flush/crash/recovery cycle, ``peek``/``__contains__``, and a
live aggregated :class:`~repro.index.full_index.IndexStats`.

Contract highlights:

* **1-shard degeneracy** — with one shard every call is delegated
  verbatim to a single ``DiskChunkIndex`` built with identical
  parameters, so results (clock, stats, goldens) are byte-identical to
  the unsharded substrate. The bench gate (``BENCH_shard.json``) and the
  property suite pin this.
* **answer equivalence at N shards** — dedup *decisions* depend only on
  the fingerprint → location map, which sharding partitions without
  loss; recipes, store contents, and dedup ratios are identical for any
  shard count (page-fault counts and simulated clock may differ — each
  shard has its own bucket file and page cache).
* **one live stats object** — all shards share the wrapper's
  ``IndexStats`` instance, so long-lived observers (obs spans hold a
  reference and read deltas) see exact ensemble counters with zero
  aggregation cost.
* **crash discipline** — every shard is journaled together; ``flush``
  flushes shards in shard order under the injector tag ``"shard"`` (the
  chaos sweep's new crash class), ``crash`` rolls every shard back to
  its last durable flush, and ``load_recovered`` re-partitions a
  recovery-scanner rebuild across the ring.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._util import KIB
from repro.index.full_index import ChunkLocation, DiskChunkIndex, IndexStats
from repro.sharding.router import ShardRouter

__all__ = ["ShardedChunkIndex"]


class _RoutedMapView:
    """Read-only dict-like view over the shards' maps.

    Engines use ``index._map.get`` as a free peek fast path (DDFS's
    batch ladder); this view keeps that idiom working by routing each
    probe to the owning shard.
    """

    __slots__ = ("_router", "_shards")

    def __init__(self, router: ShardRouter, shards: Sequence[DiskChunkIndex]):
        self._router = router
        self._shards = shards

    def get(self, fp, default=None):
        return self._shards[self._router.shard_of(int(fp))]._map.get(
            int(fp), default
        )

    def __contains__(self, fp) -> bool:
        return int(fp) in self._shards[self._router.shard_of(int(fp))]._map

    def __len__(self) -> int:
        return sum(len(s._map) for s in self._shards)

    def items(self):
        for shard in self._shards:
            yield from shard._map.items()


class ShardedChunkIndex:
    """N ``DiskChunkIndex`` shards behind the single-index interface."""

    def __init__(
        self,
        shards: Sequence[DiskChunkIndex],
        router: ShardRouter,
        obs_prefix: str = "shard",
    ) -> None:
        if len(shards) != router.n_shards:
            raise ValueError(
                f"{len(shards)} shards for a {router.n_shards}-shard router"
            )
        self.shards = list(shards)
        self.router = router
        self.n_shards = router.n_shards
        first = self.shards[0]
        self.disk = first.disk
        self.page_bytes = first.page_bytes
        self.entry_bytes = first.entry_bytes
        self._inj = first._inj
        # one live stats object for the whole ensemble: shards increment
        # the wrapper's counters directly, so observers holding the
        # stats reference (obs spans) read exact aggregates
        self.stats: IndexStats = first.stats
        for shard in self.shards[1:]:
            shard.stats = self.stats
        if self.n_shards == 1:
            self._map = first._map
        else:
            self._map = _RoutedMapView(router, self.shards)
        self._obs_prefix = obs_prefix

    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        disk,
        n_shards: int,
        expected_entries: int = 1_000_000,
        page_bytes: int = 4 * KIB,
        entry_bytes: int = 40,
        page_cache_pages: int = 256,
        journaled: bool = False,
        retry=None,
        vnodes: int = 128,
    ) -> "ShardedChunkIndex":
        """Build N equal shards over one disk.

        Capacity and page cache are divided across shards (ceiling
        division, so 1 shard reproduces the unsharded sizing exactly and
        N shards never under-provision the ensemble).
        """
        router = ShardRouter(n_shards, vnodes=vnodes)
        per_entries = -(-int(expected_entries) // n_shards)
        per_cache = (
            -(-int(page_cache_pages) // n_shards) if page_cache_pages > 0 else 0
        )
        shards = [
            DiskChunkIndex(
                disk,
                expected_entries=per_entries,
                page_bytes=page_bytes,
                entry_bytes=entry_bytes,
                page_cache_pages=per_cache,
                journaled=journaled,
                retry=retry,
            )
            for _ in range(n_shards)
        ]
        return cls(shards, router)

    # -- bookkeeping -----------------------------------------------------

    def __len__(self) -> int:
        return sum(len(s) for s in self.shards)

    def __contains__(self, fp: int) -> bool:
        return int(fp) in self.shards[self.router.shard_of(int(fp))]._map

    @property
    def n_pages(self) -> int:
        return sum(s.n_pages for s in self.shards)

    def page_of(self, fp: int) -> int:
        """Stable ensemble-wide page id: the owning shard's page, offset
        by the pages of the shards before it."""
        fp = int(fp)
        shard = self.router.shard_of(fp)
        base = sum(s.n_pages for s in self.shards[:shard])
        return base + self.shards[shard].page_of(fp)

    def shard_fill(self) -> List[int]:
        """Entries per shard (the balance diagnostic obs exports)."""
        return [len(s) for s in self.shards]

    @property
    def disk_bytes(self) -> int:
        return sum(s.disk_bytes for s in self.shards)

    def peek(self, fp: int) -> Optional[ChunkLocation]:
        return self.shards[self.router.shard_of(int(fp))].peek(fp)

    # -- obs (twin-run contract: counters only, never behavior) ----------

    def _record_obs(self, lookups: int = 0, inserts: int = 0) -> None:
        from repro.obs import get_active

        obs = get_active()
        if not obs.enabled:
            return
        p = self._obs_prefix
        reg = obs.registry
        reg.counter(f"{p}.batches").inc()
        if lookups:
            reg.counter(f"{p}.routed_lookups").inc(lookups)
        if inserts:
            reg.counter(f"{p}.routed_inserts").inc(inserts)
        reg.gauge(f"{p}.n_shards").set(self.n_shards)
        reg.gauge(f"{p}.fill_balance").set(
            self.router.fill_balance(self.shard_fill())
        )

    # -- lookups ---------------------------------------------------------

    def lookup(self, fp: int) -> Optional[ChunkLocation]:
        return self.shards[self.router.shard_of(int(fp))].lookup(fp)

    def lookup_many(self, fps) -> List[Optional[ChunkLocation]]:
        """Batched lookup: partition by shard, drive each shard's
        in-order batch once (shard-id order, deterministically), then
        scatter the answers back to input order."""
        if self.n_shards == 1:
            return self.shards[0].lookup_many(fps)
        if isinstance(fps, np.ndarray):
            fps = fps.tolist()
        parts = self.router.partition(fps)
        out: List[Optional[ChunkLocation]] = [None] * len(fps)
        for shard_id in sorted(parts):
            positions, shard_fps = parts[shard_id]
            for pos, loc in zip(
                positions, self.shards[shard_id].lookup_many(shard_fps)
            ):
                out[pos] = loc
        self._record_obs(lookups=len(fps))
        return out

    def lookup_batch_sorted(self, fps) -> List[Optional[ChunkLocation]]:
        """Out-of-line sorted sweep, shard by shard: each shard with
        work pays its own one-scan charge (the ensemble never sweeps a
        shard the batch does not touch)."""
        if self.n_shards == 1:
            return self.shards[0].lookup_batch_sorted(fps)
        if isinstance(fps, np.ndarray):
            fps = fps.tolist()
        parts = self.router.partition(fps)
        out: List[Optional[ChunkLocation]] = [None] * len(fps)
        for shard_id in sorted(parts):
            positions, shard_fps = parts[shard_id]
            for pos, loc in zip(
                positions, self.shards[shard_id].lookup_batch_sorted(shard_fps)
            ):
                out[pos] = loc
        return out

    # -- writes ----------------------------------------------------------

    def insert(self, fp: int, location: ChunkLocation) -> None:
        self.shards[self.router.shard_of(int(fp))].insert(fp, location)

    def insert_many(self, fps, locations) -> None:
        if self.n_shards == 1:
            self.shards[0].insert_many(fps, locations)
            return
        parts = self.router.partition(list(fps))
        locations = list(locations)
        for shard_id in sorted(parts):
            positions, shard_fps = parts[shard_id]
            self.shards[shard_id].insert_many(
                shard_fps, [locations[p] for p in positions]
            )
        self._record_obs(inserts=len(locations))

    def update(self, fp: int, location: ChunkLocation) -> None:
        self.shards[self.router.shard_of(int(fp))].update(fp, location)

    def update_many(self, fps, locations) -> None:
        if self.n_shards == 1:
            self.shards[0].update_many(fps, locations)
            return
        parts = self.router.partition(list(fps))
        locations = list(locations)
        for shard_id in sorted(parts):
            positions, shard_fps = parts[shard_id]
            self.shards[shard_id].update_many(
                shard_fps, [locations[p] for p in positions]
            )

    # -- durability ------------------------------------------------------

    def flush(self) -> int:
        """Flush every shard, in shard order, each under the injector
        tag ``"shard"`` (nested over the shard's own ``"index_flush"``
        tag) so chaos crash points can land mid-shard-flush — after some
        shards are durable and before others are."""
        total = 0
        for shard in self.shards:
            if self._inj is not None and self.n_shards > 1:
                with self._inj.tagged("shard"):
                    total += shard.flush()
            else:
                total += shard.flush()
        return total

    def crash(self) -> None:
        for shard in self.shards:
            shard.crash()

    def load_recovered(self, entries: Dict[int, ChunkLocation]) -> int:
        """Re-partition a recovery rebuild across the ring."""
        if self.n_shards == 1:
            return self.shards[0].load_recovered(entries)
        fps = list(entries)
        parts = self.router.partition(fps)
        total = 0
        for shard_id in range(self.n_shards):
            positions, shard_fps = parts.get(shard_id, ([], []))
            total += self.shards[shard_id].load_recovered(
                {fp: entries[fp] for fp in shard_fps}
            )
        return total
