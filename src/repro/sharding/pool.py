"""N shard workers as real processes, with per-shard spill directories.

The deterministic experiments drive the in-process
:class:`~repro.sharding.index.ShardedChunkIndex`; this module is the
*deployment* half of the tentpole — N worker processes, each owning one
shard's fingerprint map, served batched ``lookup_many`` /
``insert_many`` commands over pipes. It reuses the :mod:`repro.parallel` worker
conventions (the fork start method with a spawn fallback, stable
shard-ordered merges) and the same consistent-hash router as the
in-process index, so the two deployments route identically.

Durability reuses the journaled-flush idea of the index (PR 4) at the
process level: each worker owns ``spill_root/shard-<k>`` and, on
``flush``, appends its unflushed entries to an fsynced append-only
journal there (fixed 24-byte records). :meth:`ShardWorkerPool.recover`
rebuilds every shard map by replaying the journals — entries that were
inserted but never flushed are lost on a kill, exactly like the
simulated index's crash semantics, and the chaos-style pool test pins
that flushed data always survives ``kill -9``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import struct
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.index.full_index import ChunkLocation
from repro.sharding.router import ShardRouter

__all__ = ["ShardWorkerPool", "replay_journal"]

#: journal record: fingerprint, cid, sid
_RECORD = struct.Struct("<Qqq")

_JOURNAL_NAME = "journal.bin"


def _shard_dir(spill_root: str, shard: int) -> Path:
    return Path(spill_root) / f"shard-{shard:03d}"


def replay_journal(path: Path) -> Dict[int, ChunkLocation]:
    """Rebuild one shard's map from its append-only journal.

    A torn tail (partial trailing record from a crash mid-append) is
    truncated, mirroring the recovery scanner's torn-container rule.
    """
    entries: Dict[int, ChunkLocation] = {}
    if not path.is_file():
        return entries
    blob = path.read_bytes()
    usable = len(blob) - (len(blob) % _RECORD.size)
    for off in range(0, usable, _RECORD.size):
        fp, cid, sid = _RECORD.unpack_from(blob, off)
        entries[fp] = ChunkLocation(cid, sid)
    return entries


def _worker_main(shard: int, spill_root: Optional[str], conn) -> None:
    """One shard worker: dict + optional journal, command loop."""
    entries: Dict[int, ChunkLocation] = {}
    unflushed: List[Tuple[int, int, int]] = []
    journal: Optional[Path] = None
    if spill_root is not None:
        shard_dir = _shard_dir(spill_root, shard)
        shard_dir.mkdir(parents=True, exist_ok=True)
        journal = shard_dir / _JOURNAL_NAME
        entries.update(replay_journal(journal))
    while True:
        cmd, payload = conn.recv()
        if cmd == "lookup_many":
            conn.send([entries.get(fp) for fp in payload])
        elif cmd == "insert_many":
            fps, locs = payload
            for fp, loc in zip(fps, locs):
                entries[fp] = ChunkLocation(*loc)
                unflushed.append((fp, loc[0], loc[1]))
            conn.send(len(fps))
        elif cmd == "flush":
            n = len(unflushed)
            if journal is not None and unflushed:
                with open(journal, "ab") as fh:
                    for rec in unflushed:
                        fh.write(_RECORD.pack(*rec))
                    fh.flush()
                    os.fsync(fh.fileno())
            unflushed.clear()
            conn.send(n)
        elif cmd == "len":
            conn.send(len(entries))
        elif cmd == "stop":
            conn.send(True)
            conn.close()
            return


class ShardWorkerPool:
    """Batched fingerprint service over N shard worker processes."""

    def __init__(
        self,
        n_shards: int,
        spill_root: Optional[str] = None,
        vnodes: int = 128,
    ) -> None:
        self.router = ShardRouter(n_shards, vnodes=vnodes)
        self.n_shards = n_shards
        self.spill_root = spill_root
        # same start-method ladder as repro.parallel.grid
        try:
            ctx = mp.get_context("fork")
        except ValueError:  # pragma: no cover - non-posix fallback
            ctx = mp.get_context("spawn")
        self._conns = []
        self._procs = []
        for shard in range(n_shards):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(shard, spill_root, child),
                daemon=True,
            )
            proc.start()
            child.close()
            self._conns.append(parent)
            self._procs.append(proc)

    # ------------------------------------------------------------------

    def _scatter_gather(self, cmd: str, parts, default):
        """Send one command to every shard with work, concurrently (all
        sends go out before any receive — the shards genuinely overlap),
        then gather in shard order."""
        touched = sorted(parts)
        for shard in touched:
            self._conns[shard].send((cmd, parts[shard]))
        return {shard: self._conns[shard].recv() for shard in touched}

    def lookup_many(self, fps: Sequence[int]) -> List[Optional[ChunkLocation]]:
        parts = self.router.partition([int(fp) for fp in fps])
        replies = self._scatter_gather(
            "lookup_many", {s: p[1] for s, p in parts.items()}, None
        )
        out: List[Optional[ChunkLocation]] = [None] * len(fps)
        for shard, (positions, _) in parts.items():
            for pos, loc in zip(positions, replies[shard]):
                out[pos] = ChunkLocation(*loc) if loc is not None else None
        return out

    def insert_many(self, fps: Sequence[int], locations) -> int:
        parts = self.router.partition([int(fp) for fp in fps])
        locations = [tuple(loc) for loc in locations]
        payloads = {
            s: (p[1], [locations[i] for i in p[0]]) for s, p in parts.items()
        }
        replies = self._scatter_gather("insert_many", payloads, 0)
        return sum(replies.values())

    def flush(self) -> int:
        """Journal every shard's unflushed entries (fsynced)."""
        for conn in self._conns:
            conn.send(("flush", None))
        return sum(conn.recv() for conn in self._conns)

    def __len__(self) -> int:
        for conn in self._conns:
            conn.send(("len", None))
        return sum(conn.recv() for conn in self._conns)

    def close(self) -> None:
        for conn, proc in zip(self._conns, self._procs):
            try:
                conn.send(("stop", None))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            conn.close()
            proc.join(timeout=5)
        self._procs = []
        self._conns = []

    def kill(self) -> None:
        """Hard-kill every worker (the pool chaos test's crash)."""
        for proc in self._procs:
            proc.kill()
            proc.join(timeout=5)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------

    @classmethod
    def recover(cls, spill_root: str) -> Dict[int, ChunkLocation]:
        """Replay every shard journal under ``spill_root`` into one map
        (what a restarted pool's workers do shard-by-shard)."""
        entries: Dict[int, ChunkLocation] = {}
        root = Path(spill_root)
        if not root.is_dir():
            return entries
        for shard_dir in sorted(root.glob("shard-*")):
            entries.update(replay_journal(shard_dir / _JOURNAL_NAME))
        return entries
