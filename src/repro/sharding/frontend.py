"""The multi-tenant ingest front-end.

Multiplexes many tenants' backup streams over one sharded fingerprint
index: streams advance round-robin in fixed tenant order, one bounded
chunk batch per turn, and every index interaction is batched — the
front-end namespaces the batch, probes the bounded *inline cache*, and
folds the cache misses into per-shard ``lookup_many`` /
``insert_many`` calls via the
:class:`~repro.sharding.index.ShardedChunkIndex` router. Containers are
placed tenant-aware through a
:class:`~repro.sharding.tenancy.TenantStoreSet`.

The inline cache is the HPDedup (arXiv:1702.08153) contention point:
all tenants share one bounded fingerprint-cache budget, and the
*allocator* decides who gets how much of it:

* :class:`GlobalLRUAllocator` — one shared LRU; a low-locality tenant's
  unique fingerprints flood the cache and evict other tenants' useful
  entries (cache pollution).
* :class:`PrioritizedAllocator` — per-tenant partitions resized by a
  windowed locality estimate (recent inline hit rate), HPDedup's
  prioritized allocation: low-locality tenants shrink toward a floor,
  high-locality tenants keep their working sets resident.

With ``cache_only=True`` (the HPDedup regime) a cache miss is *final*
for the inline phase — the chunk is written and its dedup deferred —
so the aggregate inline dedup ratio directly measures allocation
quality. With ``cache_only=False`` misses fall through to the
authoritative sharded index (exact dedup; the mode the tenant-isolation
equivalence tests pin).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.index.cache import LRUCache
from repro.index.full_index import ChunkLocation
from repro.sharding.index import ShardedChunkIndex
from repro.sharding.tenancy import TenantNamespace, TenantStoreSet
from repro.storage.recipe import BackupRecipe, RecipeBuilder
from repro.workloads.generators import BackupJob

__all__ = [
    "TenantStream",
    "TenantReport",
    "GlobalLRUAllocator",
    "PrioritizedAllocator",
    "IngestFrontend",
]


@dataclass
class TenantStream:
    """One tenant's backup sequence (jobs are consumed in order)."""

    tenant: str
    jobs: Sequence[BackupJob]


@dataclass
class TenantReport:
    """Per-tenant ingest accounting."""

    tenant: str
    logical_bytes: int = 0
    removed_bytes: int = 0
    written_bytes: int = 0
    cache_lookups: int = 0
    cache_hits: int = 0
    recipes: List[BackupRecipe] = field(default_factory=list)

    @property
    def inline_dedup_pct(self) -> float:
        """Bytes removed inline, as % of logical bytes."""
        if self.logical_bytes == 0:
            return 0.0
        return 100.0 * self.removed_bytes / self.logical_bytes


class GlobalLRUAllocator:
    """One shared LRU over the whole inline-cache budget."""

    name = "global-lru"

    def __init__(self, capacity: int) -> None:
        self.capacity = int(capacity)
        self._cache = LRUCache(capacity)

    def register(self, tenant: str) -> None:
        pass

    def probe(self, tenant: str, fp: int) -> bool:
        return self._cache.get(fp) is not None

    def admit(self, tenant: str, fp: int) -> None:
        self._cache.put(fp, True)

    def shares(self) -> Dict[str, int]:
        return {"*": self.capacity}


class PrioritizedAllocator:
    """HPDedup-style prioritized per-tenant cache allocation.

    Each tenant owns a private LRU partition. Every
    ``rebalance_every`` probes the budget is redistributed
    proportionally to each tenant's inline locality estimate — an EWMA
    of windowed hit rates, so a tenant that was simply *quiet* during a
    window (its batches are shorter than the polluter's) keeps its
    earned share rather than being reset to zero — plus a floor so a
    tenant whose locality recovers can climb back. Shrunken partitions
    drop their oldest entries — exactly what an LRU under a smaller
    budget would have dropped first.
    """

    name = "prioritized"

    def __init__(
        self,
        capacity: int,
        floor_frac: float = 0.05,
        rebalance_every: int = 2048,
        ewma_carry: float = 0.85,
    ) -> None:
        self.capacity = int(capacity)
        self.floor_frac = float(floor_frac)
        self.rebalance_every = int(rebalance_every)
        self.ewma_carry = float(ewma_carry)
        self._caches: Dict[str, LRUCache] = {}
        self._window: Dict[str, List[int]] = {}  # tenant -> [probes, hits]
        self._ewma: Dict[str, float] = {}  # tenant -> locality estimate
        self._since_rebalance = 0

    def register(self, tenant: str) -> None:
        if tenant in self._caches:
            return
        self._caches[tenant] = LRUCache(1)  # placeholder; resized below
        self._window[tenant] = [0, 0]
        self._ewma[tenant] = 0.0
        self._split_evenly()

    def _split_evenly(self) -> None:
        n = len(self._caches)
        share = max(1, self.capacity // n)
        for cache in self._caches.values():
            self._resize(cache, share)

    @staticmethod
    def _resize(cache: LRUCache, capacity: int) -> None:
        cache.capacity = max(1, int(capacity))
        while len(cache._data) > cache.capacity:
            cache._data.popitem(last=False)

    def probe(self, tenant: str, fp: int) -> bool:
        window = self._window[tenant]
        window[0] += 1
        hit = self._caches[tenant].get(fp) is not None
        if hit:
            window[1] += 1
        self._since_rebalance += 1
        if self._since_rebalance >= self.rebalance_every:
            self._rebalance()
        return hit

    def admit(self, tenant: str, fp: int) -> None:
        self._caches[tenant].put(fp, True)

    def _rebalance(self) -> None:
        self._since_rebalance = 0
        floor = self.floor_frac
        weights = {}
        for tenant, (probes, hits) in self._window.items():
            if probes:
                # fold the fresh sample into the estimate; a tenant
                # with no probes this window keeps its earned locality,
                # and the slow carry stops one evicted window from
                # death-spiraling a mid-locality tenant to the floor
                carry = self.ewma_carry
                self._ewma[tenant] = carry * self._ewma[tenant] + (
                    1.0 - carry
                ) * (hits / probes)
            weights[tenant] = max(self._ewma[tenant], floor)
        total = sum(weights.values())
        if total <= 0:
            return
        for tenant in sorted(self._caches):
            share = max(1, int(self.capacity * weights[tenant] / total))
            self._resize(self._caches[tenant], share)
        for window in self._window.values():
            window[0] = window[1] = 0

    def shares(self) -> Dict[str, int]:
        return {t: c.capacity for t, c in sorted(self._caches.items())}


class IngestFrontend:
    """Round-robin multiplexer of tenant streams over one shard plane."""

    def __init__(
        self,
        index: ShardedChunkIndex,
        stores: TenantStoreSet,
        allocator,
        *,
        isolated: bool = True,
        cache_only: bool = False,
        batch_chunks: int = 512,
    ) -> None:
        self.index = index
        self.stores = stores
        self.allocator = allocator
        self.isolated = isolated
        self.cache_only = cache_only
        self.batch_chunks = int(batch_chunks)
        self._namespaces: Dict[str, TenantNamespace] = {}
        self._sids: Dict[str, int] = {}

    def _namespace(self, tenant: str) -> TenantNamespace:
        ns = self._namespaces.get(tenant)
        if ns is None:
            ns = self._namespaces[tenant] = TenantNamespace(
                tenant, isolated=self.isolated
            )
        return ns

    # ------------------------------------------------------------------

    def run(self, streams: Sequence[TenantStream]) -> Dict[str, TenantReport]:
        """Ingest every tenant's jobs, interleaved round-robin.

        Generations advance in lockstep: all tenants' job *g* are
        multiplexed batch-by-batch before any tenant starts job *g+1*
        (the concurrent-backup-window regime HPDedup models).
        """
        reports = {s.tenant: TenantReport(tenant=s.tenant) for s in streams}
        for stream in streams:
            self.allocator.register(stream.tenant)
        n_rounds = max((len(s.jobs) for s in streams), default=0)
        for round_no in range(n_rounds):
            active = []
            for stream in streams:
                if round_no < len(stream.jobs):
                    job = stream.jobs[round_no]
                    builder = RecipeBuilder(job.generation, label=job.label)
                    active.append((stream.tenant, job, builder, [0]))
            # round-robin: one bounded chunk batch per tenant per turn
            while active:
                still = []
                for tenant, job, builder, cursor in active:
                    start = cursor[0]
                    stop = min(start + self.batch_chunks, len(job.stream.fps))
                    self._ingest_batch(
                        tenant,
                        job.stream.fps[start:stop],
                        job.stream.sizes[start:stop],
                        builder,
                        reports[tenant],
                    )
                    cursor[0] = stop
                    if stop < len(job.stream.fps):
                        still.append((tenant, job, builder, cursor))
                    else:
                        reports[tenant].recipes.append(builder.finalize())
                        self.stores.store_for(tenant).flush()
                        self.index.flush()
                active = still
        return reports

    # ------------------------------------------------------------------

    def _ingest_batch(
        self,
        tenant: str,
        fps,
        sizes,
        builder: RecipeBuilder,
        report: TenantReport,
    ) -> None:
        """One multiplexed batch: namespace, probe the inline cache,
        resolve misses (batched through the shard router unless
        ``cache_only``), write the rest tenant-aware."""
        ns = self._namespace(tenant)
        wrapped = ns.wrap_many(fps).tolist()
        sizes = [int(s) for s in sizes]
        n = len(wrapped)
        report.logical_bytes += sum(sizes)
        report.cache_lookups += n

        probe = self.allocator.probe
        admit = self.allocator.admit
        known: List[Optional[ChunkLocation]] = [None] * n
        misses: List[int] = []
        for i, fp in enumerate(wrapped):
            if probe(tenant, fp):
                known[i] = self.index.peek(fp)
                report.cache_hits += 1
            else:
                misses.append(i)
        if misses and not self.cache_only:
            # the batched per-shard path: one lookup_many through the
            # router resolves every cache miss of this batch
            for i, loc in zip(
                misses, self.index.lookup_many([wrapped[i] for i in misses])
            ):
                known[i] = loc

        store = self.stores.store_for(tenant)
        sid = self._sids.get(tenant, 0)
        new_fps: List[int] = []
        new_locs: List[ChunkLocation] = []
        batch_new: Dict[int, ChunkLocation] = {}
        for i, fp in enumerate(wrapped):
            size = sizes[i]
            loc = known[i]
            if loc is None:
                # intra-batch duplicate of a chunk this very batch wrote
                # (the index insert is batched at the end, so the
                # router's lookup could not have seen it yet)
                loc = batch_new.get(fp)
            if loc is not None:
                report.removed_bytes += size
                builder.add(fp, size, loc.cid)
            else:
                cid = store.append(fp, size)
                loc = ChunkLocation(cid, sid)
                batch_new[fp] = loc
                new_fps.append(fp)
                new_locs.append(loc)
                report.written_bytes += size
                builder.add(fp, size, cid)
            admit(tenant, fp)
        if new_fps:
            # batched per-shard insert of everything this batch wrote
            self.index.insert_many(new_fps, new_locs)
        self._sids[tenant] = sid + 1
