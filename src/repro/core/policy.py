"""Rewrite policies: which duplicates keep their redundancy.

The paper's policy is a straight SPL threshold (α = 0.1 in the
evaluation): duplicates shared with a stored segment whose SPL is below α
are rewritten. The alternatives here exist for the ablation benches:

* :class:`CappingPolicy` — keep references only to the top-K stored
  segments by share (in the spirit of capping à la Lillibridge et al.);
  rewrite duplicates pointing anywhere else.
* :class:`NeverRewritePolicy` / :class:`AlwaysRewritePolicy` — the two
  extremes: pure DDFS behaviour and no-dedup-across-segments behaviour.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet

from repro._util import check_fraction
from repro.core.spl import SPLProfile


@dataclass(frozen=True)
class RewriteDecision:
    """The policy's verdict for one incoming segment.

    Attributes:
        rewrite_sids: stored segments whose shared duplicates must be
            written again instead of referenced.
    """

    rewrite_sids: FrozenSet[int]

    def should_rewrite(self, sid: int) -> bool:
        return sid in self.rewrite_sids

    @property
    def n_rewritten_segments(self) -> int:
        return len(self.rewrite_sids)


_KEEP_ALL = RewriteDecision(rewrite_sids=frozenset())


class RewritePolicy(abc.ABC):
    """Maps a segment's SPL profile to a rewrite decision."""

    @abc.abstractmethod
    def decide(self, profile: SPLProfile) -> RewriteDecision:
        """Choose which stored segments' duplicates to rewrite."""


@dataclass(frozen=True)
class SPLThresholdPolicy(RewritePolicy):
    """The paper's policy: rewrite duplicates shared with any stored
    segment whose SPL(m, k) < α.

    Attributes:
        alpha: the preset threshold (paper evaluates 0.1). ``alpha == 0``
            never rewrites (every SPL is >= 0, and strict inequality
            fails), recovering DDFS exactly.
    """

    alpha: float = 0.1

    def __post_init__(self) -> None:
        check_fraction("alpha", self.alpha)

    def decide(self, profile: SPLProfile) -> RewriteDecision:
        if not profile.shares:
            return _KEEP_ALL
        total = profile.segment_total
        rewrite = frozenset(
            sid for sid, cnt in profile.shares.items() if cnt < self.alpha * total
        )
        return RewriteDecision(rewrite_sids=rewrite)


@dataclass(frozen=True)
class CappingPolicy(RewritePolicy):
    """Reference at most ``cap`` stored segments per incoming segment —
    the ones sharing the most — and rewrite the duplicates pointing at
    everything else. Bounds the per-segment fragment count directly."""

    cap: int = 4

    def __post_init__(self) -> None:
        if self.cap < 0:
            raise ValueError(f"cap must be >= 0, got {self.cap}")

    def decide(self, profile: SPLProfile) -> RewriteDecision:
        if len(profile.shares) <= self.cap:
            return _KEEP_ALL
        ranked = sorted(profile.shares.items(), key=lambda kv: (-kv[1], kv[0]))
        losers = frozenset(sid for sid, _ in ranked[self.cap :])
        return RewriteDecision(rewrite_sids=losers)


class NeverRewritePolicy(RewritePolicy):
    """Always deduplicate — byte-identical behaviour to DDFS."""

    def decide(self, profile: SPLProfile) -> RewriteDecision:
        return _KEEP_ALL


class AlwaysRewritePolicy(RewritePolicy):
    """Rewrite every cross-segment duplicate — maximal linearity, worst
    compression; the upper bound on DeFrag's storage overhead."""

    def decide(self, profile: SPLProfile) -> RewriteDecision:
        return RewriteDecision(rewrite_sids=frozenset(profile.shares.keys()))
