"""DeFragEngine: DDFS identification + SPL-driven selective rewrite.

Processing of one incoming segment (paper §III-B) is three-phase:

1. **Identify** — resolve every chunk through the DDFS decision ladder
   (prefetch cache → stream buffer → summary vector → on-disk index with
   locality prefetch), collecting for each duplicate the stored segment
   id holding its copy. All identification disk costs are charged here,
   identically to DDFS.
2. **Decide** — build the segment's SPL profile and ask the rewrite
   policy (the paper's α-threshold by default) which stored segments'
   duplicates to rewrite.
3. **Place** — walk the segment in stream order: new chunks and rewritten
   duplicates are appended to the container log (and the index is
   re-pointed at the fresh copies, so *future* streams inherit the
   restored linearity); kept duplicates are referenced in place.

The engine inherits all DDFS parameters; with
``policy=SPLThresholdPolicy(alpha=0.0)`` (or ``NeverRewritePolicy``) it
degrades to byte-identical DDFS behaviour, which the tests assert.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.api import register_engine
from repro.core.policy import RewritePolicy, SPLThresholdPolicy
from repro.core.spl import SPLProfile, spl_profile
from repro.dedup.base import CostModel, EngineResources, SegmentOutcome
from repro.dedup.ddfs import DDFSEngine
from repro.index.full_index import ChunkLocation
from repro.obs.registry import SPL_EDGES
from repro.segmenting.segmenter import Segment


class DeFragEngine(DDFSEngine):
    """Selective deduplication guided by Spatial Locality Level.

    Args:
        resources, cost, bloom_capacity, bloom_fp_rate, cache_containers:
            as in :class:`~repro.dedup.ddfs.DDFSEngine`.
        policy: the rewrite policy; defaults to the paper's
            ``SPLThresholdPolicy(alpha=0.1)``.
        byte_weighted_spl: score SPL in bytes instead of chunk counts
            (ablation; the paper counts chunks).
    """

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        *,
        policy: Optional[RewritePolicy] = None,
        byte_weighted_spl: bool = False,
        **ddfs_kwargs,
    ) -> None:
        super().__init__(resources, cost, **ddfs_kwargs)
        self.policy = policy if policy is not None else SPLThresholdPolicy(alpha=0.1)
        self.byte_weighted_spl = bool(byte_weighted_spl)
        # cumulative accounting of intentionally kept redundancy
        self.total_rewritten_bytes = 0
        self.total_rewritten_chunks = 0
        # per-backup policy telemetry (reset in _on_begin_backup)
        self._segments_with_rewrites = 0
        self._referenced_segment_groups = 0
        self._rewritten_groups = 0

    # ------------------------------------------------------------------

    def _identify(self, segment: Segment) -> List[Optional[ChunkLocation]]:
        """Phase 1: the DDFS ladder for every chunk (charges disk)."""
        return [self._resolve_duplicate(int(fp)) for fp in segment.fps]

    def _profile(
        self, segment: Segment, locations: List[Optional[ChunkLocation]]
    ) -> SPLProfile:
        """Phase 2a: SPL profile from the identification results."""
        dup_sids: List[int] = []
        dup_weights: List[int] = []
        for loc, size in zip(locations, segment.sizes):
            if loc is not None:
                dup_sids.append(loc.sid)
                dup_weights.append(int(size))
        if self.byte_weighted_spl:
            return spl_profile(
                dup_sids,
                segment.n_chunks,
                dup_weights=dup_weights,
                segment_nbytes=segment.nbytes,
            )
        return spl_profile(dup_sids, segment.n_chunks)

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        recipe = self._recipe

        observing = self.obs.enabled
        clock = self.res.disk.clock
        t0 = clock.now
        locations = self._identify(segment)
        t1 = clock.now
        profile = self._profile(segment, locations)
        decision = self.policy.decide(profile)
        self._referenced_segment_groups += profile.n_referenced_segments
        self._rewritten_groups += decision.n_rewritten_segments
        if decision.n_rewritten_segments:
            self._segments_with_rewrites += 1
        if observing:
            self._record_decision(segment, profile, decision, locations)

        sid = self._allocate_sid()
        for fp, size, loc in zip(segment.fps, segment.sizes, locations):
            fp = int(fp)
            size = int(size)
            if loc is None:
                # identification ran before any of this segment's writes;
                # an earlier occurrence within the segment may have landed
                # in the stream buffer since
                prior = self._stream_new.get(fp)
                if prior is not None:
                    outcome.removed_dup += size
                    recipe.add(fp, size, prior.cid)
                    continue
                cid = self._write_new_chunk(fp, size, sid)
                outcome.written_new += size
                recipe.add(fp, size, cid)
            elif decision.should_rewrite(loc.sid):
                cid = self._rewrite_duplicate(fp, size, sid)
                outcome.rewritten_dup += size
                recipe.add(fp, size, cid)
            else:
                outcome.removed_dup += size
                recipe.add(fp, size, loc.cid)
        if observing:
            self._record_phases(t0, t1, clock.now)
        return outcome

    # -- batch path -------------------------------------------------------

    def _profile_batch(self, segment: Segment, locations) -> SPLProfile:
        """Phase 2a, vectorized: the SPL profile's shares from one
        ``np.unique`` over the duplicates' stored-segment ids (identical
        shares to :func:`~repro.core.spl.spl_profile`)."""
        sids = np.fromiter(
            (loc.sid for loc in locations if loc is not None), dtype=np.int64
        )
        if not self.byte_weighted_spl:
            uniq, counts = np.unique(sids, return_counts=True)
            shares = dict(zip(uniq.tolist(), counts.tolist()))
            return SPLProfile(segment_total=segment.n_chunks, shares=shares)
        dup_mask = np.fromiter(
            (loc is not None for loc in locations), dtype=bool, count=len(locations)
        )
        weights = segment.sizes[dup_mask].astype(np.int64)
        uniq, inverse = np.unique(sids, return_inverse=True)
        # float64 bincount is exact here: per-segment byte sums < 2**53
        sums = np.bincount(inverse, weights=weights).astype(np.int64)
        shares = dict(zip(uniq.tolist(), sums.tolist()))
        return SPLProfile(segment_total=segment.nbytes, shares=shares)

    def _process_segment_batch(self, segment: Segment) -> SegmentOutcome:
        """Segment-at-a-time identify/decide/place. Identification and the
        SPL profile are vectorized; the place walk defers the summary-
        vector inserts to one ``add_many`` (no chunk reads the bloom
        between a place-phase write and the end of the segment, so the
        deferral is invisible). Equivalent to the scalar path bit-for-bit."""
        n = segment.n_chunks
        outcome = SegmentOutcome(index=segment.index, n_chunks=n, nbytes=segment.nbytes)
        assert self._recipe is not None

        observing = self.obs.enabled
        clock = self.res.disk.clock
        t0 = clock.now
        locations = self._identify_batch(segment)
        t1 = clock.now
        profile = self._profile_batch(segment, locations)
        decision = self.policy.decide(profile)
        self._referenced_segment_groups += profile.n_referenced_segments
        self._rewritten_groups += decision.n_rewritten_segments
        if decision.n_rewritten_segments:
            self._segments_with_rewrites += 1
        if observing:
            self._record_decision(segment, profile, decision, locations)
        rewrite_sids = decision.rewrite_sids

        sid = self._allocate_sid()
        fps = segment.fps.tolist()
        sizes = segment.sizes.tolist()
        index = self.res.index
        stream = self._stream_new

        # Non-event chunks — duplicates kept in place — only record their
        # identify-time location and count as removed; the stateful walk
        # below visits just the events (writes and rewrites), which is
        # the same visit order the scalar walk charges them in.
        cids = [0 if loc is None else loc.cid for loc in locations]
        if rewrite_sids:
            events = [
                i
                for i, loc in enumerate(locations)
                if loc is None or loc.sid in rewrite_sids
            ]
        else:
            events = [i for i, loc in enumerate(locations) if loc is None]

        # The appends have no read dependency on each other: a loc-None
        # event's fp was absent from stream/cache/index at identify time
        # (otherwise the ladder would have resolved it — the summary
        # vector has no false negatives), so the scalar walk's
        # stream-buffer hits come only from the *first* loc-None write of
        # the same fp earlier in this segment, and rewrite events never
        # read at all. The whole event walk therefore classifies first
        # and appends in one packed run: identical container packing and
        # seal charges (the only disk events of the place phase), and the
        # new/rewritten fp sets are disjoint, so folding the index writes
        # into one insert_many + update_many preserves the final map.
        new_fps: List[int] = []
        new_slots: List[int] = []
        re_fps: List[int] = []
        re_slots: List[int] = []
        w_fps: List[int] = []
        w_sizes: List[int] = []
        w_events: List[int] = []
        dup_events: List[Tuple[int, int]] = []  # (event idx, write slot)
        first_slot = {}
        written = rewritten = 0
        removed = outcome.nbytes - sum(sizes[i] for i in events)
        for i in events:
            fp = fps[i]
            if locations[i] is None:
                slot = first_slot.get(fp)
                if slot is not None:
                    dup_events.append((i, slot))
                    removed += sizes[i]
                    continue
                first_slot[fp] = len(w_fps)
                new_fps.append(fp)
                new_slots.append(len(w_fps))
                written += sizes[i]
            else:
                re_fps.append(fp)
                re_slots.append(len(w_fps))
                size = sizes[i]
                self.total_rewritten_bytes += size
                rewritten += size
            w_fps.append(fp)
            w_sizes.append(sizes[i])
            w_events.append(i)
        self.total_rewritten_chunks += len(re_fps)
        if w_fps:
            w_cids = self.res.store.append_run(w_fps, w_sizes)
            w_locs = [ChunkLocation(c, sid) for c in w_cids]
            for i, c in zip(w_events, w_cids):
                cids[i] = c
            for i, slot in dup_events:
                cids[i] = w_cids[slot]
            if new_fps:
                index.insert_many(new_fps, [w_locs[s] for s in new_slots])
            if re_fps:
                index.update_many(re_fps, [w_locs[s] for s in re_slots])
            stream.update(zip(w_fps, w_locs))
        if new_fps:
            self.bloom.add_many(np.asarray(new_fps, dtype=np.uint64))
        outcome.written_new = written
        outcome.removed_dup = removed
        outcome.rewritten_dup = rewritten
        self._recipe.add_many(fps, sizes, cids)
        if observing:
            self._record_phases(t0, t1, clock.now)
        return outcome

    # -- observability -----------------------------------------------------

    def _record_phases(self, t0: float, t1: float, t2: float) -> None:
        """Identify/profile/place span attribution for one segment.

        Profiling and the policy decision are pure RAM work in the model
        (zero simulated time), so the profile span carries counts only;
        the clock deltas split cleanly into identify and place. Both
        ingest paths snapshot the clock at the same phase boundaries, so
        the spans — like every other metric — are path-independent.
        """
        p = self.name
        reg = self.obs.registry
        reg.span(f"{p}.phase.identify").record(t1 - t0)
        reg.span(f"{p}.phase.profile").record(0.0)
        reg.span(f"{p}.phase.place").record(t2 - t1)

    def _record_decision(self, segment, profile, decision, locations) -> None:
        """SPL histogram + one ``defrag_decision`` event per referenced
        stored segment (the paper's rewrite-or-dedup choice, §III-B)."""
        reg = self.obs.registry
        p = self.name
        hist = reg.histogram(f"{p}.spl", SPL_EDGES)
        total = profile.segment_total
        alpha = getattr(self.policy, "alpha", None)
        # the paper's per-segment decision signal over sim time: the
        # largest share any one stored segment holds of this segment
        reg.timeseries(f"{p}.ts.max_spl").sample(
            self.res.disk.clock.now, profile.max_spl
        )
        events = self.obs.events
        if not events.enabled:
            for amount in profile.shares.values():
                hist.observe(amount / total if total else 0.0)
            return
        chunk_share: dict = {}
        byte_share: dict = {}
        for loc, size in zip(locations, segment.sizes):
            if loc is not None:
                s = loc.sid
                chunk_share[s] = chunk_share.get(s, 0) + 1
                byte_share[s] = byte_share.get(s, 0) + int(size)
        for peer, amount in sorted(profile.shares.items()):
            spl = amount / total if total else 0.0
            hist.observe(spl)
            events.emit(
                "defrag_decision",
                engine=p,
                generation=self._generation,
                segment=segment.index,
                peer_segment=int(peer),
                spl=spl,
                alpha=alpha,
                action="rewrite" if decision.should_rewrite(peer) else "dedup",
                chunks=chunk_share.get(peer, 0),
                bytes=byte_share.get(peer, 0),
            )

    def _on_begin_backup(self) -> None:
        super()._on_begin_backup()
        self._segments_with_rewrites = 0
        self._referenced_segment_groups = 0
        self._rewritten_groups = 0

    def _collect_extras(self) -> dict:
        extras = super()._collect_extras()
        extras.update(
            {
                "segments_with_rewrites": float(self._segments_with_rewrites),
                "spl_groups_referenced": float(self._referenced_segment_groups),
                "spl_groups_rewritten": float(self._rewritten_groups),
            }
        )
        return extras

    def _rewrite_duplicate(self, fp: int, size: int, sid: int) -> int:
        """Phase 3, rewrite path: store the duplicate again next to the
        segment's new chunks and re-point the index at the fresh copy."""
        cid = self.res.store.append(fp, size)
        loc = ChunkLocation(cid, sid)
        self.res.index.update(fp, loc)
        self._stream_new[fp] = loc
        self.total_rewritten_bytes += size
        self.total_rewritten_chunks += 1
        return cid


@register_engine("DeFrag")
def _build_defrag(resources, config) -> "DeFragEngine":
    """repro.api factory: DeFrag with the paper's SPL threshold policy."""
    return DeFragEngine(
        resources,
        policy=SPLThresholdPolicy(alpha=config.alpha),
        bloom_capacity=config.bloom_capacity,
        bloom_fp_rate=config.bloom_fp_rate,
        cache_containers=config.cache_containers,
        prefetch_ahead=config.prefetch_ahead,
        batch=config.batch,
    )
