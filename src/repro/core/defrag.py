"""DeFragEngine: DDFS identification + SPL-driven selective rewrite.

Processing of one incoming segment (paper §III-B) is three-phase:

1. **Identify** — resolve every chunk through the DDFS decision ladder
   (prefetch cache → stream buffer → summary vector → on-disk index with
   locality prefetch), collecting for each duplicate the stored segment
   id holding its copy. All identification disk costs are charged here,
   identically to DDFS.
2. **Decide** — build the segment's SPL profile and ask the rewrite
   policy (the paper's α-threshold by default) which stored segments'
   duplicates to rewrite.
3. **Place** — walk the segment in stream order: new chunks and rewritten
   duplicates are appended to the container log (and the index is
   re-pointed at the fresh copies, so *future* streams inherit the
   restored linearity); kept duplicates are referenced in place.

The engine inherits all DDFS parameters; with
``policy=SPLThresholdPolicy(alpha=0.0)`` (or ``NeverRewritePolicy``) it
degrades to byte-identical DDFS behaviour, which the tests assert.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.policy import RewritePolicy, SPLThresholdPolicy
from repro.core.spl import SPLProfile, spl_profile
from repro.dedup.base import CostModel, EngineResources, SegmentOutcome
from repro.dedup.ddfs import DDFSEngine
from repro.index.full_index import ChunkLocation
from repro.segmenting.segmenter import Segment


class DeFragEngine(DDFSEngine):
    """Selective deduplication guided by Spatial Locality Level.

    Args:
        resources, cost, bloom_capacity, bloom_fp_rate, cache_containers:
            as in :class:`~repro.dedup.ddfs.DDFSEngine`.
        policy: the rewrite policy; defaults to the paper's
            ``SPLThresholdPolicy(alpha=0.1)``.
        byte_weighted_spl: score SPL in bytes instead of chunk counts
            (ablation; the paper counts chunks).
    """

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        *,
        policy: Optional[RewritePolicy] = None,
        byte_weighted_spl: bool = False,
        **ddfs_kwargs,
    ) -> None:
        super().__init__(resources, cost, **ddfs_kwargs)
        self.policy = policy if policy is not None else SPLThresholdPolicy(alpha=0.1)
        self.byte_weighted_spl = bool(byte_weighted_spl)
        # cumulative accounting of intentionally kept redundancy
        self.total_rewritten_bytes = 0
        self.total_rewritten_chunks = 0
        # per-backup policy telemetry (reset in _on_begin_backup)
        self._segments_with_rewrites = 0
        self._referenced_segment_groups = 0
        self._rewritten_groups = 0

    # ------------------------------------------------------------------

    def _identify(self, segment: Segment) -> List[Optional[ChunkLocation]]:
        """Phase 1: the DDFS ladder for every chunk (charges disk)."""
        return [self._resolve_duplicate(int(fp)) for fp in segment.fps]

    def _profile(
        self, segment: Segment, locations: List[Optional[ChunkLocation]]
    ) -> SPLProfile:
        """Phase 2a: SPL profile from the identification results."""
        dup_sids: List[int] = []
        dup_weights: List[int] = []
        for loc, size in zip(locations, segment.sizes):
            if loc is not None:
                dup_sids.append(loc.sid)
                dup_weights.append(int(size))
        if self.byte_weighted_spl:
            return spl_profile(
                dup_sids,
                segment.n_chunks,
                dup_weights=dup_weights,
                segment_nbytes=segment.nbytes,
            )
        return spl_profile(dup_sids, segment.n_chunks)

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        recipe = self._recipe

        locations = self._identify(segment)
        profile = self._profile(segment, locations)
        decision = self.policy.decide(profile)
        self._referenced_segment_groups += profile.n_referenced_segments
        self._rewritten_groups += decision.n_rewritten_segments
        if decision.n_rewritten_segments:
            self._segments_with_rewrites += 1

        sid = self._allocate_sid()
        for fp, size, loc in zip(segment.fps, segment.sizes, locations):
            fp = int(fp)
            size = int(size)
            if loc is None:
                # identification ran before any of this segment's writes;
                # an earlier occurrence within the segment may have landed
                # in the stream buffer since
                prior = self._stream_new.get(fp)
                if prior is not None:
                    outcome.removed_dup += size
                    recipe.add(fp, size, prior.cid)
                    continue
                cid = self._write_new_chunk(fp, size, sid)
                outcome.written_new += size
                recipe.add(fp, size, cid)
            elif decision.should_rewrite(loc.sid):
                cid = self._rewrite_duplicate(fp, size, sid)
                outcome.rewritten_dup += size
                recipe.add(fp, size, cid)
            else:
                outcome.removed_dup += size
                recipe.add(fp, size, loc.cid)
        return outcome

    def _on_begin_backup(self) -> None:
        super()._on_begin_backup()
        self._segments_with_rewrites = 0
        self._referenced_segment_groups = 0
        self._rewritten_groups = 0

    def _collect_extras(self) -> dict:
        extras = super()._collect_extras()
        extras.update(
            {
                "segments_with_rewrites": float(self._segments_with_rewrites),
                "spl_groups_referenced": float(self._referenced_segment_groups),
                "spl_groups_rewritten": float(self._rewritten_groups),
            }
        )
        return extras

    def _rewrite_duplicate(self, fp: int, size: int, sid: int) -> int:
        """Phase 3, rewrite path: store the duplicate again next to the
        segment's new chunks and re-point the index at the fresh copy."""
        cid = self.res.store.append(fp, size)
        loc = ChunkLocation(cid, sid)
        self.res.index.update(fp, loc)
        self._stream_new[fp] = loc
        self.total_rewritten_bytes += size
        self.total_rewritten_chunks += 1
        return cid
