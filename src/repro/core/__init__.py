"""DeFrag: the paper's core contribution.

DeFrag reduces the *de-linearization of data placement* by selectively
NOT deduplicating: after duplicate identification, each incoming segment
``Seg_m`` is scored against every stored segment ``Seg_k`` holding some
of its duplicates with the **Spatial Locality Level**

    SPL(m, k) = |Seg_m ∩ Seg_k| / |Seg_m|        (paper Eq. 2)

If ``SPL(m, k) < α`` the duplicates shared with ``Seg_k`` are *rewritten*
sequentially next to ``Seg_m``'s new chunks instead of being removed —
sacrificing a little compression to keep placement linear, which
preserves duplicate locality (throughput, Fig. 4), keeps similarity
detection effective (efficiency, Fig. 5), and cuts restore seeks
(read performance, Fig. 6).

* :mod:`~repro.core.spl` — the SPL metric and per-segment profiles.
* :mod:`~repro.core.policy` — rewrite policies: the paper's α-threshold
  plus ablation alternatives (byte-weighted SPL, top-K capping, never /
  always bounds).
* :mod:`~repro.core.defrag` — :class:`DeFragEngine`, the DDFS machinery
  with the selective-rewrite stage inserted.
"""

from repro.core.spl import SPLProfile, spl_profile
from repro.core.policy import (
    AlwaysRewritePolicy,
    CappingPolicy,
    NeverRewritePolicy,
    RewriteDecision,
    RewritePolicy,
    SPLThresholdPolicy,
)
from repro.core.defrag import DeFragEngine

__all__ = [
    "SPLProfile",
    "spl_profile",
    "RewritePolicy",
    "RewriteDecision",
    "SPLThresholdPolicy",
    "CappingPolicy",
    "NeverRewritePolicy",
    "AlwaysRewritePolicy",
    "DeFragEngine",
]
