"""The Spatial Locality Level (SPL) metric — paper Eq. 2.

    SPL(m, k) = |Seg_m ∩ Seg_k| / |Seg_m|

where ``Seg_m`` is the incoming segment and ``Seg_k`` a stored segment
holding some of its duplicate chunks. ``SPL(m,k) == 1`` means every chunk
of ``Seg_m`` can be retrieved with the single positioning that reads
``Seg_k``; values near 0 mean the shared chunks are a tiny sliver of
``Seg_m`` — retrieving them costs a seek that buys almost nothing.

The intersection is counted in *chunks* by default (the paper counts
shared data chunks); byte weighting is available for the ablation in
:mod:`repro.core.policy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence


@dataclass(frozen=True)
class SPLProfile:
    """SPL scores of one incoming segment against all stored segments
    that share chunks with it.

    Attributes:
        segment_total: |Seg_m| in the chosen unit (chunks or bytes).
        shares: stored-segment id -> shared amount (same unit).
    """

    segment_total: int
    shares: Mapping[int, int]

    def spl(self, sid: int) -> float:
        """SPL(m, k) for stored segment ``sid`` (0.0 if nothing shared)."""
        if self.segment_total <= 0:
            return 0.0
        return self.shares.get(sid, 0) / self.segment_total

    @property
    def max_spl(self) -> float:
        """The strongest locality any stored segment offers."""
        if not self.shares or self.segment_total <= 0:
            return 0.0
        return max(self.shares.values()) / self.segment_total

    @property
    def duplicate_fraction(self) -> float:
        """Fraction of the segment that is duplicate (any stored segment)."""
        if self.segment_total <= 0:
            return 0.0
        return sum(self.shares.values()) / self.segment_total

    @property
    def n_referenced_segments(self) -> int:
        """How many stored segments this segment's duplicates live in —
        the segment-granularity fragment count."""
        return len(self.shares)

    def items(self):
        """(sid, spl) pairs."""
        total = self.segment_total
        return [(sid, cnt / total if total else 0.0) for sid, cnt in self.shares.items()]


def spl_profile(
    dup_sids: Sequence[int],
    segment_n_chunks: int,
    dup_weights: Optional[Sequence[int]] = None,
    segment_nbytes: Optional[int] = None,
) -> SPLProfile:
    """Build an :class:`SPLProfile` from per-duplicate stored-segment ids.

    Args:
        dup_sids: for every duplicate chunk of ``Seg_m`` (in any order),
            the id of the stored segment holding its copy.
        segment_n_chunks: |Seg_m| in chunks.
        dup_weights: optional per-duplicate byte sizes; when given
            (together with ``segment_nbytes``) the profile is
            byte-weighted instead of chunk-counted.
        segment_nbytes: |Seg_m| in bytes (required with ``dup_weights``).

    Note that each duplicate chunk contributes to exactly one stored
    segment (the one the index resolves it to), so the shares sum to at
    most the segment total and every SPL lies in [0, 1].
    """
    if (dup_weights is None) != (segment_nbytes is None):
        raise ValueError("dup_weights and segment_nbytes must be given together")
    shares: Dict[int, int] = {}
    if dup_weights is None:
        for sid in dup_sids:
            shares[int(sid)] = shares.get(int(sid), 0) + 1
        total = int(segment_n_chunks)
    else:
        if len(dup_weights) != len(dup_sids):
            raise ValueError("dup_weights must parallel dup_sids")
        for sid, w in zip(dup_sids, dup_weights):
            shares[int(sid)] = shares.get(int(sid), 0) + int(w)
        total = int(segment_nbytes)  # type: ignore[arg-type]
    if sum(shares.values()) > total:
        raise ValueError("shared amount exceeds segment total")
    return SPLProfile(segment_total=total, shares=shares)
