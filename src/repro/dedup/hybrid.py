"""Hybrid inline/out-of-line deduplication (arXiv 1405.5661).

The CUHK design splits dedup across the backup window boundary. Inline,
the engine consults **RAM only**: a bounded LRU fingerprint cache (plus
the current stream's own writes). Cache hits are removed by reference;
everything else — including true duplicates the cache has forgotten —
is appended sequentially, so ingest never touches the on-disk index and
runs at near-DeFrag speed. Out of line, the maintenance pass settles
the bill: every chunk written since the last pass gets its *charged*
exact index lookup; chunks that turn out to be duplicates are repointed
at the canonical old copy (through the GC redirect machinery, journaled
two-phase), their freshly written bytes reclaimed by compaction, and
genuinely new chunks are batch-inserted into the index.

The frontier experiment reads this as: exact-grade dedup ratio at
cache-only inline cost, paid for with deferred maintenance seconds —
the intermediate point between DDFS (all work inline) and RevDedup
(no fine-grained dedup at all).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api import register_engine
from repro.dedup.base import (
    CostModel,
    DedupEngine,
    EngineResources,
    MaintenanceReport,
    SegmentOutcome,
)
from repro.index.full_index import ChunkLocation
from repro.segmenting.segmenter import Segment
from repro.storage.gc import GarbageCollector
from repro.storage.recipe import BackupRecipe


class HybridEngine(DedupEngine):
    """Cache-only inline dedup + deferred exact out-of-line pass."""

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        batch: bool = True,
        obs=None,
        cache_chunks: int = 16384,
        maintenance_min_utilization: float = 0.5,
    ) -> None:
        super().__init__(resources, cost, batch=batch, obs=obs)
        if cache_chunks <= 0:
            raise ValueError("cache_chunks must be positive")
        self.cache_chunks = int(cache_chunks)
        self.maintenance_min_utilization = float(maintenance_min_utilization)
        #: bounded inline fingerprint cache: fp -> cid, LRU evicted
        self._fp_cache: "OrderedDict[int, int]" = OrderedDict()
        #: current stream's own writes (never evicted mid-backup)
        self._stream_new: Dict[int, int] = {}
        #: chunks written since the last maintenance pass, in write
        #: order — the deferred exact-dedup work queue
        self._pending: List[Tuple[int, int, int]] = []
        self._cache_hits = 0
        self._cache_misses = 0

    def _on_begin_backup(self) -> None:
        self._stream_new = {}
        self._cache_hits = 0
        self._cache_misses = 0

    def _collect_extras(self) -> Dict[str, float]:
        probes = self._cache_hits + self._cache_misses
        return {
            "inline_cache_hits": float(self._cache_hits),
            "inline_hit_ratio": self._cache_hits / probes if probes else 0.0,
            "deferred_chunks": float(len(self._pending)),
        }

    def _cache_put(self, fp: int, cid: int) -> None:
        cache = self._fp_cache
        if fp in cache:
            cache.move_to_end(fp)
            cache[fp] = cid
            return
        cache[fp] = cid
        if len(cache) > self.cache_chunks:
            cache.popitem(last=False)

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        recipe = self._recipe
        cache = self._fp_cache
        stream = self._stream_new
        pending = self._pending
        store = self.res.store
        store_has = store.has
        store_append = store.append
        for fp, size in zip(segment.fps, segment.sizes):
            fp = int(fp)
            size = int(size)
            cid = stream.get(fp)
            if cid is None:
                cid = cache.get(fp)
                if cid is not None:
                    if store_has(cid):
                        cache.move_to_end(fp)
                    else:
                        # a compaction pass the engine never drove (an
                        # external GC) removed the container; drop the
                        # stale entry and treat the chunk as a miss
                        del cache[fp]
                        cid = None
            if cid is not None:
                self._cache_hits += 1
                outcome.removed_dup += size
                recipe.add(fp, size, cid)
                continue
            # RAM miss: no index consultation inline — write it through
            # and let the out-of-line pass decide whether it was new
            self._cache_misses += 1
            cid = store_append(fp, size)
            stream[fp] = cid
            pending.append((fp, size, cid))
            self._cache_put(fp, cid)
            outcome.written_new += size
            recipe.add(fp, size, cid)
        return outcome

    # -- out-of-line maintenance ------------------------------------------

    def maintenance(
        self, retained: Sequence[BackupRecipe]
    ) -> Tuple[Optional[MaintenanceReport], List[BackupRecipe]]:
        """Deferred exact dedup: one charged index probe per chunk
        written since the last pass, redirect duplicates to canonical
        old copies, compact the reclaimed space, batch-insert the rest."""
        pending = self._pending
        if not pending:
            return None, list(retained)
        self._pending = []
        disk = self.res.disk
        index = self.res.index
        t0 = disk.clock.now
        d0 = disk.stats.snapshot()

        # one authoritative probe per distinct fingerprint, resolved as
        # a single sorted-merge sweep of the on-disk index — the batched
        # access pattern that makes deferring exact dedup out of line
        # cheaper than paying page faults chunk-at-a-time inline
        unique: List[int] = []
        seen: Dict[int, int] = {}
        for fp, _size, _cid in pending:
            if fp not in seen:
                seen[fp] = -1
                unique.append(fp)
        for fp, loc in zip(unique, index.lookup_batch_sorted(unique)):
            if loc is not None:
                seen[fp] = loc.cid

        redirect: Dict[int, int] = {}
        new_fps: List[int] = []
        new_locs: List[ChunkLocation] = []
        for fp, _size, cid in pending:
            canonical = seen[fp]
            if canonical < 0:
                # genuinely new: this copy becomes canonical
                seen[fp] = cid
                new_fps.append(fp)
                new_locs.append(ChunkLocation(cid, -1))
            elif canonical != cid:
                redirect[fp] = canonical
        if new_fps:
            index.insert_many(new_fps, new_locs)

        gc = GarbageCollector(self.res.store, index)
        gc_report, remapped = gc.collect(
            retained,
            min_utilization=self.maintenance_min_utilization,
            redirect=redirect,
        )

        # compaction may have moved copies the inline cache still points
        # at; re-resolve every cached location from the index (RAM peeks)
        store_has = self.res.store.has
        for fp in list(self._fp_cache):
            loc = index.peek(fp)
            if loc is not None and store_has(loc.cid):
                self._fp_cache[fp] = loc.cid
            else:
                del self._fp_cache[fp]

        report = MaintenanceReport(
            generation=self._generation,
            engine=self.name,
            elapsed_seconds=disk.clock.now - t0,
            containers_rewritten=gc_report.containers_collected,
            bytes_moved=gc_report.bytes_moved,
            bytes_reclaimed=gc_report.bytes_reclaimed,
            redirected_chunks=gc_report.redirected_chunks,
            index_lookups=len(unique),
            disk_delta=disk.stats.delta_since(d0),
        )
        return report, remapped


@register_engine(
    "Hybrid",
    supports_maintenance=True,
    doc="RAM-cache-only inline dedup; an out-of-line pass runs the "
    "charged exact index probes and reclaims deferred duplicates",
)
def _build_hybrid(resources, config) -> "HybridEngine":
    """repro.api factory: CUHK-style hybrid inline/out-of-line dedup."""
    return HybridEngine(
        resources,
        cache_chunks=config.hybrid_cache_chunks,
        maintenance_min_utilization=config.maintenance_min_utilization,
    )
