"""RevDedup: reverse-reference deduplication (arXiv 1302.0621).

The policy inverts DeFrag's. Inline work is deliberately coarse: a new
backup is deduplicated only at *segment* granularity against segments
the store has already seen — a fully identical segment is removed by
reference, any changed segment is written out **whole**, duplicate
chunks included, so the newest backup always lands sequentially at the
open end of the log. The fine-grained dedup happens afterwards, in the
out-of-line maintenance pass: every *old* reference to a chunk the new
backup just rewrote is repointed at the fresh copy (the "reverse
reference"), the superseded old copies become dead, and containers that
fall below the utilization floor are compacted through the journaled
two-phase GC protocol.

Consequences the frontier experiment measures: the latest backup
restores nearly seek-free (it is physically sequential), while ingest
writes more bytes than exact dedup and every generation pays an extra
maintenance bill — exactly the opposite trade to DeFrag, which pays
during ingest to keep *all* generations moderately sequential.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.api import register_engine
from repro.dedup.base import (
    CostModel,
    DedupEngine,
    EngineResources,
    MaintenanceReport,
    SegmentOutcome,
)
from repro.index.full_index import ChunkLocation
from repro.segmenting.segmenter import Segment
from repro.storage.gc import GarbageCollector
from repro.storage.recipe import BackupRecipe


class RevDedupEngine(DedupEngine):
    """Coarse inline dedup + reverse-reference rewrite of old copies."""

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        batch: bool = True,
        obs=None,
        maintenance_min_utilization: float = 0.5,
    ) -> None:
        super().__init__(resources, cost, batch=batch, obs=obs)
        self.maintenance_min_utilization = float(maintenance_min_utilization)
        #: segment content keys ((fps...), (sizes...)) seen in the
        #: previous / current generation — the coarse dedup universe
        self._prev_segs: Set[Tuple[Tuple[int, ...], Tuple[int, ...]]] = set()
        self._cur_segs: Set[Tuple[Tuple[int, ...], Tuple[int, ...]]] = set()
        #: chunks this generation wrote, pending reverse-reference
        #: rewrite (fp -> fresh cid); consumed by :meth:`maintenance`
        self._pending_redirect: Dict[int, int] = {}
        self._gen_written: Dict[int, int] = {}
        self._next_sid = 0
        self._seg_hits = 0
        self._seg_writes = 0

    def _on_begin_backup(self) -> None:
        self._prev_segs = self._cur_segs
        self._cur_segs = set()
        self._gen_written = {}
        self._seg_hits = 0
        self._seg_writes = 0

    def _on_end_backup(self) -> None:
        # survive until a maintenance pass consumes them, even if the
        # driver skips a generation between passes
        self._pending_redirect.update(self._gen_written)

    def _collect_extras(self) -> Dict[str, float]:
        return {
            "segment_hits": float(self._seg_hits),
            "segment_writes": float(self._seg_writes),
        }

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        recipe = self._recipe
        fps = [int(f) for f in segment.fps]
        sizes = [int(s) for s in segment.sizes]
        key = (tuple(fps), tuple(sizes))
        sid = self._next_sid
        self._next_sid += 1
        index = self.res.index
        store_has = self.res.store.has
        locs = None
        if key in self._prev_segs or key in self._cur_segs:
            # whole-segment duplicate: reference the stored copies at
            # whatever location the index currently considers canonical
            # (peek is a RAM probe — coarse dedup pays no index IO).
            # An external GC pass may have collected a copy behind the
            # engine's back; any unresolvable chunk demotes the whole
            # segment to the write path.
            locs = [index.peek(fp) for fp in fps]
            if not all(loc is not None and store_has(loc.cid) for loc in locs):
                locs = None
        if locs is not None:
            self._seg_hits += 1
            for fp, size, loc in zip(fps, sizes, locs):
                recipe.add(fp, size, loc.cid)
            outcome.removed_dup = segment.nbytes
        else:
            # any change at all: write the segment out whole, duplicate
            # chunks included, keeping the new backup sequential; the
            # index is repointed so the fresh copy becomes canonical
            self._seg_writes += 1
            gen_written = self._gen_written
            store_append = self.res.store.append
            for fp, size in zip(fps, sizes):
                cid = store_append(fp, size)
                loc = ChunkLocation(cid, sid)
                if index.peek(fp) is None:
                    index.insert(fp, loc)
                else:
                    index.update(fp, loc)
                gen_written[fp] = cid
                recipe.add(fp, size, cid)
            outcome.written_new = segment.nbytes
        self._cur_segs.add(key)
        return outcome

    # -- out-of-line maintenance ------------------------------------------

    def maintenance(
        self, retained: Sequence[BackupRecipe]
    ) -> Tuple[Optional[MaintenanceReport], List[BackupRecipe]]:
        """Reverse-reference rewrite: repoint every old reference to a
        just-rewritten chunk at the fresh copy, then compact containers
        the repoints emptied (journaled two-phase GC underneath)."""
        redirect = self._pending_redirect
        if not redirect:
            return None, list(retained)
        disk = self.res.disk
        t0 = disk.clock.now
        d0 = disk.stats.snapshot()
        # reverse-reference discovery: the pass must consult the
        # authoritative index for every chunk the window rewrote —
        # resolved as one sorted-merge sweep of the on-disk index, the
        # batched access pattern an out-of-line pass can afford and an
        # inline one cannot
        self.res.index.lookup_batch_sorted(list(redirect))
        gc = GarbageCollector(self.res.store, self.res.index)
        gc_report, remapped = gc.collect(
            retained,
            min_utilization=self.maintenance_min_utilization,
            redirect=redirect,
            rewrite_redirected=True,
        )
        self._pending_redirect = {}
        report = MaintenanceReport(
            generation=self._generation,
            engine=self.name,
            elapsed_seconds=disk.clock.now - t0,
            containers_rewritten=gc_report.containers_collected,
            bytes_moved=gc_report.bytes_moved,
            bytes_reclaimed=gc_report.bytes_reclaimed,
            redirected_chunks=gc_report.redirected_chunks,
            index_lookups=len(redirect),
            disk_delta=disk.stats.delta_since(d0),
        )
        return report, remapped


@register_engine(
    "RevDedup",
    supports_maintenance=True,
    rewrites_old_containers=True,
    doc="coarse inline dedup; maintenance repoints old backups at the "
    "newest copies so the latest backup stays sequential",
)
def _build_revdedup(resources, config) -> "RevDedupEngine":
    """repro.api factory: reverse-reference dedup (RevDedup)."""
    return RevDedupEngine(
        resources,
        maintenance_min_utilization=config.maintenance_min_utilization,
    )
