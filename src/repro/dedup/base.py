"""Engine contract, cost model, and per-backup reports.

An engine consumes a backup stream segment by segment. Everything it does
is charged to two meters:

* the shared :class:`~repro.storage.disk.DiskModel` (index page faults,
  metadata prefetches, container seals), and
* an analytic CPU term (:class:`CostModel`): fingerprinting/lookup work
  per byte and per chunk.

Simulated throughput for a backup is ``logical_bytes / elapsed simulated
seconds``. Wall-clock time never enters any reported number, so the
reproduction's results cannot be skewed by Python's own speed.
"""

from __future__ import annotations

import abc
import contextlib
import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util import MIB, check_nonnegative, format_rate
from repro.index.full_index import DiskChunkIndex
from repro.obs import Observability, get_active
from repro.obs.spans import EngineScope
from repro.segmenting.segmenter import Segment
from repro.storage.disk import DiskModel, DiskStats
from repro.storage.recipe import BackupRecipe, RecipeBuilder
from repro.storage.store import ContainerStore, StoreConfig

log = logging.getLogger(__name__)

#: shared no-op context for engines on a fault-free disk
_NULL_CTX = contextlib.nullcontext()


@dataclass(frozen=True)
class CostModel:
    """Analytic CPU costs of the ingest path.

    Attributes:
        cpu_seconds_per_byte: chunking + fingerprinting cost (defaults to
            a 600 MB/s single-stream hash pipeline, the right order for a
            circa-2012 backup server).
        cpu_seconds_per_chunk: constant per-chunk work: RAM lookups,
            bloom probes, amortized batched index merge.
    """

    cpu_seconds_per_byte: float = 1.0 / 600e6
    cpu_seconds_per_chunk: float = 2e-6

    def __post_init__(self) -> None:
        check_nonnegative("cpu_seconds_per_byte", self.cpu_seconds_per_byte)
        check_nonnegative("cpu_seconds_per_chunk", self.cpu_seconds_per_chunk)

    def segment_cpu_seconds(self, nbytes: int, n_chunks: int) -> float:
        """CPU time to ingest one segment."""
        return nbytes * self.cpu_seconds_per_byte + n_chunks * self.cpu_seconds_per_chunk


@dataclass
class SegmentOutcome:
    """What happened to one incoming segment.

    Byte counters partition the segment exactly:
    ``written_new + removed_dup + rewritten_dup == nbytes`` where

    * ``written_new`` — chunks the engine believed new. For near-exact
      engines this may include true duplicates the engine failed to
      detect; the pipeline's oracle quantifies those afterwards
      (``BackupReport.missed_dup_bytes``).
    * ``removed_dup`` — duplicates eliminated by reference.
    * ``rewritten_dup`` — duplicates knowingly stored again (DeFrag's
      low-SPL rewrites).
    """

    index: int
    n_chunks: int
    nbytes: int
    written_new: int = 0
    removed_dup: int = 0
    rewritten_dup: int = 0

    def __post_init__(self) -> None:
        if self.n_chunks < 0 or self.nbytes < 0:
            raise ValueError("segment accounting cannot be negative")

    @property
    def stored_bytes(self) -> int:
        """Bytes physically written for this segment."""
        return self.written_new + self.rewritten_dup

    def check_partition(self) -> None:
        """Assert the byte partition identity."""
        total = self.written_new + self.removed_dup + self.rewritten_dup
        if total != self.nbytes:
            raise AssertionError(
                f"segment {self.index}: partition {total} != nbytes {self.nbytes}"
            )


@dataclass
class MaintenanceReport:
    """Outcome of one out-of-line maintenance pass.

    Produced by engines whose placement policy does work *between*
    backups (RevDedup's reverse-reference rewrite, the hybrid engine's
    deferred exact dedup). Every number is priced on the simulated
    clock, exactly like ingest.

    Attributes:
        generation: the generation the pass closed.
        engine: engine display name.
        elapsed_seconds: simulated seconds the pass took.
        containers_rewritten: victim containers compacted.
        bytes_moved: live payload copied during compaction.
        bytes_reclaimed: payload bytes freed.
        redirected_chunks: recipe references repointed to a preferred
            copy without any data movement.
        index_lookups: charged on-disk index probes the pass issued
            (the hybrid engine's deferred dedup bill).
        disk_delta: disk meter delta over the pass.
    """

    generation: int
    engine: str
    elapsed_seconds: float
    containers_rewritten: int = 0
    bytes_moved: int = 0
    bytes_reclaimed: int = 0
    redirected_chunks: int = 0
    index_lookups: int = 0
    disk_delta: Optional[DiskStats] = None


@dataclass
class BackupReport:
    """Per-backup result: dedup accounting, simulated time, the recipe.

    Ground-truth fields (``true_dup_bytes`` etc.) are filled in by the
    pipeline's oracle, not by engines.
    """

    generation: int
    label: str
    n_chunks: int
    logical_bytes: int
    written_new_bytes: int
    removed_dup_bytes: int
    rewritten_dup_bytes: int
    elapsed_seconds: float
    recipe: BackupRecipe
    disk_delta: DiskStats
    segments: List[SegmentOutcome] = field(default_factory=list)
    # oracle-provided ground truth
    true_dup_bytes: Optional[int] = None
    seg_true_dup_bytes: Optional[List[int]] = None
    seg_fully_dup: Optional[List[bool]] = None
    extras: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Simulated ingest rate, bytes/second."""
        return self.logical_bytes / self.elapsed_seconds if self.elapsed_seconds else 0.0

    @property
    def stored_bytes(self) -> int:
        return self.written_new_bytes + self.rewritten_dup_bytes

    @property
    def dedup_ratio(self) -> float:
        """logical / stored for this backup alone (1.0 == no savings)."""
        stored = self.stored_bytes
        return self.logical_bytes / stored if stored else float("inf")

    @property
    def missed_dup_bytes(self) -> Optional[int]:
        """True duplicates the engine stored as new (None before the
        oracle runs). DeFrag's intentional rewrites are *not* misses."""
        if self.true_dup_bytes is None:
            return None
        return self.true_dup_bytes - self.removed_dup_bytes - self.rewritten_dup_bytes

    @property
    def efficiency(self) -> Optional[float]:
        """The paper's deduplication-efficiency metric: redundant data
        removed divided by redundant data actually existing (Fig. 3)."""
        if self.true_dup_bytes is None:
            return None
        if self.true_dup_bytes == 0:
            return 1.0
        return self.removed_dup_bytes / self.true_dup_bytes

    def summary(self) -> str:
        """One-line human summary."""
        eff = self.efficiency
        eff_s = f", eff={eff:.3f}" if eff is not None else ""
        return (
            f"gen {self.generation:>3} [{self.label}] "
            f"{self.logical_bytes / MIB:8.1f} MiB in {self.elapsed_seconds:7.3f} s "
            f"-> {format_rate(self.throughput)}{eff_s}"
        )


@dataclass
class EngineResources:
    """The shared substrate an engine runs on: one disk, one container
    store, one on-disk index sized for the workload."""

    disk: DiskModel
    store: ContainerStore
    index: DiskChunkIndex

    def __post_init__(self) -> None:
        # Engine-side disk charges (metadata prefetch, similarity-block
        # IO) share the store's retry policy so no charged operation is
        # left outside the fault-tolerance boundary. Without a policy
        # these are the raw disk methods — zero overhead.
        retry = self.store.config.retry
        if retry is None:
            self.read = self.disk.read
            self.write = self.disk.write
        else:
            from repro.faults import with_retry

            self.read = with_retry(self.disk, retry, self.disk.read, "engine.read")
            self.write = with_retry(self.disk, retry, self.disk.write, "engine.write")

    @classmethod
    def create(
        cls,
        profile=None,
        container_bytes: int = 4 * MIB,
        expected_entries: int = 4_000_000,
        index_page_cache_pages: int = 256,
        store_config: Optional[StoreConfig] = None,
        disk: Optional[DiskModel] = None,
    ) -> "EngineResources":
        """Convenience constructor wiring a fresh disk/store/index.

        ``store_config`` carries the durability knobs (journal, retry);
        when given, its ``container_bytes`` wins over the legacy
        parameter. ``disk`` substitutes a pre-built disk (e.g. a
        :class:`~repro.faults.FaultyDisk`) for the default model.
        """
        from repro.storage.disk import HDD_2012

        if disk is None:
            disk = DiskModel(profile=profile if profile is not None else HDD_2012)
        if store_config is None:
            store_config = StoreConfig(container_bytes=container_bytes)
        store = ContainerStore(disk, config=store_config)
        index = DiskChunkIndex(
            disk,
            expected_entries=expected_entries,
            page_cache_pages=index_page_cache_pages,
            journaled=store_config.journal,
            retry=store_config.retry,
        )
        return cls(disk=disk, store=store, index=index)


class DedupEngine(abc.ABC):
    """Common engine skeleton: backup lifecycle + shared meters.

    Subclasses implement :meth:`_process_segment` (the scalar,
    chunk-at-a-time reference ladder) and may additionally provide
    :meth:`_process_segment_batch`, a segment-at-a-time implementation
    that resolves the whole fingerprint vector with vectorized index
    probes. The two paths are contractually equivalent: identical
    outcomes, stats, and simulated clock (the batch path replays every
    stateful side effect — LRU recency, page-cache order, disk charges —
    in scalar order, and only batches the pure computation). ``batch``
    selects the path; the scalar ladder stays available as the reference
    implementation behind ``batch=False``.
    """

    #: overridden per engine with the segment-at-a-time implementation
    _process_segment_batch = None

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        batch: bool = True,
        obs: Optional[Observability] = None,
    ) -> None:
        self.res = resources
        self.cost = cost if cost is not None else CostModel()
        self.batch = bool(batch)
        self.obs = obs if obs is not None else get_active()
        self._obs_scope: Optional[EngineScope] = None
        self._recipe: Optional[RecipeBuilder] = None
        self._outcomes: List[SegmentOutcome] = []
        self._backup_t0 = 0.0
        self._disk_t0: Optional[DiskStats] = None
        self._generation = -1
        self._label = ""

    # -- lifecycle ------------------------------------------------------

    def begin_backup(self, generation: int, label: str = "") -> None:
        """Start ingesting one backup stream."""
        if self._recipe is not None:
            raise RuntimeError("previous backup not finished (call end_backup)")
        self._generation = int(generation)
        self._label = label
        self._recipe = RecipeBuilder(generation, label)
        self._outcomes = []
        self._backup_t0 = self.res.disk.clock.now
        self._disk_t0 = self.res.disk.stats.snapshot()
        if self.obs.enabled and self.obs.events.enabled:
            cache = getattr(self, "cache", None)
            if cache is not None and getattr(cache, "on_evict", None) is None:
                cache.on_evict = self._emit_cache_evict
        self._on_begin_backup()

    def process_segment(self, segment: Segment) -> SegmentOutcome:
        """Ingest one segment: charge CPU, classify chunks, write data.

        When observability is enabled this is also the **segment
        boundary** of the sampling contract: the scope probes shared
        meters before/after and attributes phases plus per-segment
        time-series samples (cache hit ratio, index fault rate) at the
        segment's end, all on the simulated clock. Disabled sessions
        perform exactly one attribute check and record nothing.
        """
        if self._recipe is None:
            raise RuntimeError("call begin_backup first")
        cpu_s = self.cost.segment_cpu_seconds(segment.nbytes, segment.n_chunks)
        probe = None
        if self.obs.enabled:
            if self._obs_scope is None:
                self._obs_scope = self.obs.scope_for(self)
            probe = self._obs_scope.begin()
        self.res.disk.clock.advance(cpu_s)
        batch_impl = self._process_segment_batch
        if self.batch and batch_impl is not None:
            outcome = batch_impl(segment)
        else:
            outcome = self._process_segment(segment)
        outcome.check_partition()
        if probe is not None:
            self._obs_scope.end(self._generation, segment, outcome, probe, cpu_s)
        self._outcomes.append(outcome)
        return outcome

    def end_backup(self) -> BackupReport:
        """Finish the stream: flush the open container, build the report.

        The finished report is also the **generation boundary** of the
        sampling contract: the scope samples dedup ratio, rewrite
        fraction, recipe fragmentation, store occupancy, and throughput
        into the session's time series — reading only the completed
        report and meter state, after every result-bearing number is
        already fixed, so the twin-run byte-identity contract holds.
        """
        if self._recipe is None or self._disk_t0 is None:
            raise RuntimeError("call begin_backup first")
        self._on_end_backup()
        self.res.store.flush()
        self.res.index.flush()  # free no-op unless the index is journaled
        recipe = self._recipe.finalize()
        elapsed = self.res.disk.clock.now - self._backup_t0
        report = BackupReport(
            generation=self._generation,
            label=self._label,
            n_chunks=recipe.n_chunks,
            logical_bytes=recipe.total_bytes,
            written_new_bytes=sum(o.written_new for o in self._outcomes),
            removed_dup_bytes=sum(o.removed_dup for o in self._outcomes),
            rewritten_dup_bytes=sum(o.rewritten_dup for o in self._outcomes),
            elapsed_seconds=elapsed,
            recipe=recipe,
            disk_delta=self.res.disk.stats.delta_since(self._disk_t0),
            segments=self._outcomes,
        )
        report.extras.update(self._collect_extras())
        self._recipe = None
        self._disk_t0 = None
        if self.obs.enabled:
            if self._obs_scope is None:
                self._obs_scope = self.obs.scope_for(self)
            self._obs_scope.record_backup(report)
        log.debug("%s: %s", self.name, report.summary())
        return report

    # -- out-of-line maintenance ------------------------------------------

    def maintenance(
        self, retained: Sequence[BackupRecipe]
    ) -> Tuple[Optional[MaintenanceReport], List[BackupRecipe]]:
        """One out-of-line maintenance pass (optional; subclass hook).

        Engines whose placement policy defers work past ``end_backup``
        override this: RevDedup rewrites *old* containers toward the
        just-written copies, the hybrid engine runs its deferred exact
        dedup. The base implementation is a contractual no-op: no disk
        charge, no clock advance, the retained recipes returned
        unchanged (same objects, same order).

        Args:
            retained: every recipe that must stay restorable, oldest
                first; passes that move data return them remapped.

        Returns:
            ``(report, recipes)`` — ``report`` is ``None`` for a no-op
            pass, the recipes reference the post-maintenance layout.
        """
        return None, list(retained)

    def end_generation(
        self, retained: Sequence[BackupRecipe]
    ) -> Tuple[Optional[MaintenanceReport], List[BackupRecipe]]:
        """Close one generation: drive :meth:`maintenance` under the
        maintenance fault tag and record the pass to observability.

        This is the driver-facing wrapper — experiments and
        :class:`~repro.api.BackupSession` call it between backups; the
        engine-specific policy lives in :meth:`maintenance`. Any charged
        operation inside the pass carries the ``"maint"`` injector tag,
        so chaos crash points land in their own crash class and the
        journaled GC protocol underneath rolls the pass back or forward
        cleanly.
        """
        if self._recipe is not None:
            raise RuntimeError(
                "finish the open backup (end_backup) before maintenance"
            )
        from repro.faults import injector_of

        inj = injector_of(self.res.disk)
        ctx = inj.tagged("maint") if inj is not None else _NULL_CTX
        with ctx:
            report, remapped = self.maintenance(retained)
        if report is not None and self.obs.enabled:
            from repro.obs.spans import record_maintenance

            record_maintenance(self.obs, report)
        return report, remapped

    def _emit_cache_evict(self, unit_id, n_fingerprints: int) -> None:
        """Locality-cache eviction callback -> ``cache_evict`` event."""
        self.obs.events.emit(
            "cache_evict",
            engine=self.name,
            generation=self._generation,
            unit=unit_id,
            fingerprints=n_fingerprints,
        )

    # -- subclass hooks ---------------------------------------------------

    def _on_begin_backup(self) -> None:
        """Per-stream state reset hook (optional)."""

    def _on_end_backup(self) -> None:
        """Pre-flush hook (optional)."""

    def _collect_extras(self) -> Dict[str, float]:
        """Engine-specific per-backup metrics merged into the report's
        ``extras`` (optional)."""
        return {}

    @abc.abstractmethod
    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        """Classify and store one segment; return its outcome."""

    # -- shared helpers ---------------------------------------------------

    @property
    def name(self) -> str:
        """Engine display name."""
        return type(self).__name__.replace("Engine", "")
