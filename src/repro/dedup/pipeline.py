"""Workload driver + ground-truth redundancy oracle.

The oracle tracks every fingerprint ever observed (across all streams fed
to it) and computes, per backup and per segment, how many bytes were
*actually* redundant — the denominator of the paper's deduplication-
efficiency metric. Engines never see the oracle; it only annotates their
reports.
"""

from __future__ import annotations

import logging
from typing import Callable, Iterable, List, NamedTuple, Optional, Tuple

import numpy as np

log = logging.getLogger(__name__)

from repro.chunking.base import ChunkStream
from repro.dedup.base import BackupReport, DedupEngine
from repro.segmenting.segmenter import Segment, Segmenter
from repro.workloads.generators import BackupJob


class GroundTruth:
    """Exact redundancy oracle over a sequence of streams.

    Feeding order must match the engine's ingest order; the oracle treats
    the second and later occurrences of a fingerprint (anywhere, including
    earlier in the same stream) as redundant, exactly like a perfect
    deduplicator with unbounded RAM.

    Args:
        spill_dir: when set, the consolidated base array lives in a
            memory-mapped file under this directory instead of anonymous
            RAM, so the oracle's steady-state footprint stays bounded at
            GB scale (its pages are file-backed and evictable). Results
            are byte-identical with or without spilling — searchsorted
            membership probes read the same values either way.
    """

    #: consolidate pending runs into the base array when they reach this
    #: fraction of its size (geometric schedule: every fingerprint takes
    #: part in O(log n_streams) merges instead of one per stream)
    _MERGE_FRACTION = 0.5
    #: ... or when this many runs accumulate (bounds membership probes)
    _MAX_RUNS = 8

    def __init__(self, spill_dir: Optional[str] = None) -> None:
        # all fingerprints ever seen = one sorted base array + a few
        # sorted pending runs, mutually disjoint by construction
        self._seen: np.ndarray = np.zeros(0, dtype=np.uint64)
        self._runs: List[np.ndarray] = []
        self._spill_dir = spill_dir
        # consolidations alternate between two backing files so the new
        # base is never written over the file the old memmap still maps
        self._spill_flip = 0

    @property
    def unique_fingerprints(self) -> int:
        return int(self._seen.size) + sum(int(r.size) for r in self._runs)

    @staticmethod
    def _member(sorted_arr: np.ndarray, fps: np.ndarray) -> np.ndarray:
        """Vectorized membership of ``fps`` in a sorted array."""
        if sorted_arr.size == 0:
            return np.zeros(fps.size, dtype=bool)
        pos = np.searchsorted(sorted_arr, fps)
        np.minimum(pos, sorted_arr.size - 1, out=pos)
        return sorted_arr[pos] == fps

    def _seen_before(self, fps: np.ndarray) -> np.ndarray:
        """Membership of ``fps`` in everything observed so far."""
        mask = self._member(self._seen, fps)
        for run in self._runs:
            mask |= self._member(run, fps)
        return mask

    def _absorb(self, new_uniq: np.ndarray) -> None:
        """Add a sorted array of genuinely-new fingerprints (disjoint from
        the base and every pending run) and consolidate on schedule."""
        if new_uniq.size:
            self._runs.append(new_uniq)
        pending = sum(int(r.size) for r in self._runs)
        if not pending:
            return
        if (
            len(self._runs) >= self._MAX_RUNS
            or pending >= self._MERGE_FRACTION * self._seen.size
        ):
            # runs are mutually disjoint, so a plain sort of the
            # concatenation is the union
            merged = np.sort(np.concatenate([self._seen, *self._runs]))
            self._runs = []
            if self._spill_dir is None:
                self._seen = merged
            else:
                self._seen = self._spill_base(merged)

    def _spill_base(self, merged: np.ndarray) -> np.ndarray:
        """Park the consolidated base array in a memory-mapped file
        (real machine IO; the simulated clock never sees it)."""
        import os

        path = os.path.join(self._spill_dir, f"gt_seen_{self._spill_flip}.u64")
        self._spill_flip ^= 1
        # drop the previous memmap before its twin file is rewritten
        self._seen = np.zeros(0, dtype=np.uint64)
        merged.tofile(path)
        if merged.size == 0:
            return np.zeros(0, dtype=np.uint64)
        return np.memmap(path, dtype=np.uint64, mode="r")

    def observe(self, stream: ChunkStream, seg_boundaries: np.ndarray):
        """Account one stream (segment-aligned) and absorb it.

        Args:
            stream: the logical backup stream.
            seg_boundaries: chunk-index cuts (as from
                :meth:`Segmenter.boundaries`) so per-segment truths align
                with the engine's segments.

        Returns:
            ``(total_true_dup_bytes, per_segment_true_dup_bytes,
            per_segment_fully_dup)``.
        """
        n = len(stream)
        if n == 0:
            return 0, [], []
        fps = stream.fps
        sizes = stream.sizes.astype(np.int64)
        in_prev = self._seen_before(fps)
        uniq, first_idx = np.unique(fps, return_index=True)
        is_first = np.zeros(n, dtype=bool)
        is_first[first_idx] = True
        dup_mask = in_prev | ~is_first

        starts = np.asarray(seg_boundaries[:-1], dtype=np.int64)
        dup_bytes = dup_mask * sizes
        seg_dup = np.add.reduceat(dup_bytes, starts) if starts.size else np.zeros(0)
        seg_all_dup = (
            np.logical_and.reduceat(dup_mask, starts) if starts.size else np.zeros(0, bool)
        )
        # absorb only the genuinely-new uniques (first in-stream occurrence
        # and never seen before), keeping base + runs disjoint so
        # ``unique_fingerprints`` stays the exact plain sum of their sizes
        self._absorb(uniq[~in_prev[first_idx]])
        return (
            int(dup_bytes.sum()),
            [int(x) for x in seg_dup],
            [bool(x) for x in seg_all_dup],
        )


class PreparedBackup(NamedTuple):
    """One backup's engine-independent ingest inputs, computed once.

    Segment boundaries (and the segment views built from them) depend
    only on the stream and the segmenter configuration — never on the
    engine — so a workload that is replayed through several engines can
    pay for segmentation a single time (:func:`prepare_workload`).
    """

    job: BackupJob
    boundaries: np.ndarray
    segments: List[Segment]


#: the ground-truth annotation of one backup, as returned by
#: :meth:`GroundTruth.observe`: (total_true_dup_bytes,
#: per_segment_true_dup_bytes, per_segment_fully_dup)
TruthTriple = Tuple[int, List[int], List[bool]]


def prepare_workload(
    jobs: Iterable[BackupJob], segmenter: Segmenter
) -> List[PreparedBackup]:
    """Segment every job once, for replay through multiple engines."""
    prepared: List[PreparedBackup] = []
    for job in jobs:
        boundaries = segmenter.boundaries(job.stream)
        segments = segmenter.split_at(job.stream, boundaries)
        prepared.append(PreparedBackup(job, boundaries, segments))
    return prepared


def truth_annotations(prepared: Iterable[PreparedBackup]) -> List[TruthTriple]:
    """Ground-truth triples for a prepared workload, computed once.

    The oracle depends only on the streams and their segment boundaries,
    so its annotations — like the segmentation — are shareable across
    every engine that replays the same workload."""
    gt = GroundTruth()
    return [gt.observe(p.job.stream, p.boundaries) for p in prepared]


def _annotate(report: BackupReport, truth: TruthTriple) -> None:
    total, per_seg, fully = truth
    report.true_dup_bytes = total
    # copies: reports own their lists (shared truths must stay pristine)
    report.seg_true_dup_bytes = list(per_seg)
    report.seg_fully_dup = list(fully)


def run_prepared_backup(
    engine: DedupEngine,
    prepared: PreparedBackup,
    truth: Optional[TruthTriple] = None,
) -> BackupReport:
    """Ingest one pre-segmented backup; annotate a precomputed truth."""
    job = prepared.job
    engine.begin_backup(job.generation, job.label)
    for segment in prepared.segments:
        engine.process_segment(segment)
    report = engine.end_backup()
    if truth is not None:
        _annotate(report, truth)
    return report


def run_backup(
    engine: DedupEngine,
    job: BackupJob,
    segmenter: Segmenter,
    ground_truth: Optional[GroundTruth] = None,
) -> BackupReport:
    """Ingest one backup through ``engine`` and annotate ground truth."""
    boundaries = segmenter.boundaries(job.stream)
    segments = segmenter.split_at(job.stream, boundaries)
    engine.begin_backup(job.generation, job.label)
    for segment in segments:
        engine.process_segment(segment)
    report = engine.end_backup()
    if ground_truth is not None:
        _annotate(report, ground_truth.observe(job.stream, boundaries))
    return report


def ingest_bytes(
    engine: DedupEngine,
    data: bytes,
    chunker,
    segmenter: Segmenter,
    *,
    generation: int = 0,
    label: str = "bytes",
    ground_truth: Optional[GroundTruth] = None,
) -> BackupReport:
    """Convenience: chunk raw bytes and ingest them as one backup.

    The full byte-level path (CDC -> fingerprints -> segments -> engine);
    equivalent to ``run_backup(engine, BackupJob(gen, label,
    chunker.chunk(data)), segmenter)``.
    """
    stream = chunker.chunk(data)
    job = BackupJob(generation=generation, label=label, stream=stream)
    return run_backup(engine, job, segmenter, ground_truth)


def run_workload(
    engine: DedupEngine,
    jobs: Iterable[BackupJob],
    segmenter: Segmenter,
    *,
    with_ground_truth: bool = True,
    progress: Optional[Callable[[BackupReport], None]] = None,
) -> List[BackupReport]:
    """Ingest a whole workload; returns one report per backup."""
    gt = GroundTruth() if with_ground_truth else None
    reports: List[BackupReport] = []
    for job in jobs:
        report = run_backup(engine, job, segmenter, gt)
        reports.append(report)
        if progress is not None:
            progress(report)
    log.info(
        "%s: workload done, %d backups, %d logical bytes",
        engine.name,
        len(reports),
        sum(r.logical_bytes for r in reports),
    )
    return reports


def run_workload_with_maintenance(
    engine: DedupEngine,
    jobs: Iterable[BackupJob],
    segmenter: Segmenter,
    *,
    with_ground_truth: bool = True,
) -> List[BackupReport]:
    """Ingest a whole workload, driving the engine's out-of-line
    maintenance phase after every generation (all prior reports form the
    retention window) and folding the remapped recipes back into the
    reports. For engines whose maintenance is the default no-op this is
    byte-identical to :func:`run_workload` — the same objects come back
    unchanged and the clock never moves.
    """
    gt = GroundTruth() if with_ground_truth else None
    reports: List[BackupReport] = []
    for job in jobs:
        reports.append(run_backup(engine, job, segmenter, gt))
        _, remapped = engine.end_generation([r.recipe for r in reports])
        for report, recipe in zip(reports, remapped):
            report.recipe = recipe
    return reports
