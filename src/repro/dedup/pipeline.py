"""Workload driver + ground-truth redundancy oracle.

The oracle tracks every fingerprint ever observed (across all streams fed
to it) and computes, per backup and per segment, how many bytes were
*actually* redundant — the denominator of the paper's deduplication-
efficiency metric. Engines never see the oracle; it only annotates their
reports.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

import numpy as np

from repro.chunking.base import ChunkStream
from repro.dedup.base import BackupReport, DedupEngine
from repro.segmenting.segmenter import Segmenter
from repro.workloads.generators import BackupJob


class GroundTruth:
    """Exact redundancy oracle over a sequence of streams.

    Feeding order must match the engine's ingest order; the oracle treats
    the second and later occurrences of a fingerprint (anywhere, including
    earlier in the same stream) as redundant, exactly like a perfect
    deduplicator with unbounded RAM.
    """

    def __init__(self) -> None:
        self._seen = np.zeros(0, dtype=np.uint64)

    @property
    def unique_fingerprints(self) -> int:
        return int(self._seen.size)

    def observe(self, stream: ChunkStream, seg_boundaries: np.ndarray):
        """Account one stream (segment-aligned) and absorb it.

        Args:
            stream: the logical backup stream.
            seg_boundaries: chunk-index cuts (as from
                :meth:`Segmenter.boundaries`) so per-segment truths align
                with the engine's segments.

        Returns:
            ``(total_true_dup_bytes, per_segment_true_dup_bytes,
            per_segment_fully_dup)``.
        """
        n = len(stream)
        if n == 0:
            return 0, [], []
        fps = stream.fps
        sizes = stream.sizes.astype(np.int64)
        in_prev = np.isin(fps, self._seen)
        uniq, first_idx = np.unique(fps, return_index=True)
        is_first = np.zeros(n, dtype=bool)
        is_first[first_idx] = True
        dup_mask = in_prev | ~is_first

        starts = np.asarray(seg_boundaries[:-1], dtype=np.int64)
        dup_bytes = dup_mask * sizes
        seg_dup = np.add.reduceat(dup_bytes, starts) if starts.size else np.zeros(0)
        seg_all_dup = (
            np.logical_and.reduceat(dup_mask, starts) if starts.size else np.zeros(0, bool)
        )
        self._seen = np.union1d(self._seen, uniq)
        return (
            int(dup_bytes.sum()),
            [int(x) for x in seg_dup],
            [bool(x) for x in seg_all_dup],
        )


def run_backup(
    engine: DedupEngine,
    job: BackupJob,
    segmenter: Segmenter,
    ground_truth: Optional[GroundTruth] = None,
) -> BackupReport:
    """Ingest one backup through ``engine`` and annotate ground truth."""
    boundaries = segmenter.boundaries(job.stream)
    segments = segmenter.split(job.stream)
    engine.begin_backup(job.generation, job.label)
    for segment in segments:
        engine.process_segment(segment)
    report = engine.end_backup()
    if ground_truth is not None:
        total, per_seg, fully = ground_truth.observe(job.stream, boundaries)
        report.true_dup_bytes = total
        report.seg_true_dup_bytes = per_seg
        report.seg_fully_dup = fully
    return report


def ingest_bytes(
    engine: DedupEngine,
    data: bytes,
    chunker,
    segmenter: Segmenter,
    *,
    generation: int = 0,
    label: str = "bytes",
    ground_truth: Optional[GroundTruth] = None,
) -> BackupReport:
    """Convenience: chunk raw bytes and ingest them as one backup.

    The full byte-level path (CDC -> fingerprints -> segments -> engine);
    equivalent to ``run_backup(engine, BackupJob(gen, label,
    chunker.chunk(data)), segmenter)``.
    """
    stream = chunker.chunk(data)
    job = BackupJob(generation=generation, label=label, stream=stream)
    return run_backup(engine, job, segmenter, ground_truth)


def run_workload(
    engine: DedupEngine,
    jobs: Iterable[BackupJob],
    segmenter: Segmenter,
    *,
    with_ground_truth: bool = True,
    progress: Optional[Callable[[BackupReport], None]] = None,
) -> List[BackupReport]:
    """Ingest a whole workload; returns one report per backup."""
    gt = GroundTruth() if with_ground_truth else None
    reports: List[BackupReport] = []
    for job in jobs:
        report = run_backup(engine, job, segmenter, gt)
        reports.append(report)
        if progress is not None:
            progress(report)
    return reports
