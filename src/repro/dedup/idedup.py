"""iDedup-like engine (Srinivasan et al., FAST'12).

iDedup targets the same fragmentation problem as DeFrag from the other
side: instead of scoring stored segments (SPL), it only deduplicates
*sequences* — maximal runs of consecutive duplicate chunks whose stored
copies are physically contiguous (same container here). Runs shorter
than a threshold are written anyway: a short run saves little space but
costs a whole seek at read time, so eliminating it is a bad trade.

Mechanically this engine shares DDFS's identification ladder (bloom +
prefetch cache + on-disk index) and adds a placement stage like DeFrag's,
so all three selective schemes are directly comparable on one substrate.
The relationship to the paper's policy: iDedup's criterion is *adjacency
run length in the incoming stream*, DeFrag's is *share of the incoming
segment per stored segment* — the ablation benches let you see where the
two disagree.
"""

from __future__ import annotations

from typing import List, Optional

from repro._util import check_positive
from repro.dedup.base import CostModel, EngineResources, SegmentOutcome
from repro.dedup.ddfs import DDFSEngine
from repro.index.full_index import ChunkLocation
from repro.segmenting.segmenter import Segment


class IDedupEngine(DDFSEngine):
    """Selective dedup by minimum duplicate-sequence length.

    Args:
        resources, cost, bloom_capacity, bloom_fp_rate, cache_containers,
            prefetch_ahead: as in :class:`~repro.dedup.ddfs.DDFSEngine`.
        min_sequence: minimum run of stream-consecutive duplicates (whose
            copies share a container) that is allowed to deduplicate;
            shorter runs are rewritten. iDedup's paper sweeps 2-32.
    """

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        *,
        min_sequence: int = 8,
        **ddfs_kwargs,
    ) -> None:
        super().__init__(resources, cost, **ddfs_kwargs)
        check_positive("min_sequence", min_sequence)
        self.min_sequence = int(min_sequence)
        self.total_rewritten_bytes = 0
        self.total_rewritten_chunks = 0

    # ------------------------------------------------------------------

    def _dup_runs(self, locations: List[Optional[ChunkLocation]]) -> List[bool]:
        """For each chunk, True if it belongs to a *deduplicable* run:
        a maximal run of consecutive duplicates resolved to one container
        with length >= min_sequence."""
        n = len(locations)
        keep = [False] * n
        i = 0
        while i < n:
            loc = locations[i]
            if loc is None:
                i += 1
                continue
            j = i + 1
            while j < n and locations[j] is not None and locations[j].cid == loc.cid:
                j += 1
            if j - i >= self.min_sequence:
                for k in range(i, j):
                    keep[k] = True
            i = j
        return keep

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        recipe = self._recipe

        locations = [self._resolve_duplicate(int(fp)) for fp in segment.fps]
        keep = self._dup_runs(locations)

        sid = self._allocate_sid()
        for fp, size, loc, keep_dup in zip(
            segment.fps, segment.sizes, locations, keep
        ):
            fp = int(fp)
            size = int(size)
            if loc is None:
                prior = self._stream_new.get(fp)
                if prior is not None:
                    outcome.removed_dup += size
                    recipe.add(fp, size, prior.cid)
                    continue
                cid = self._write_new_chunk(fp, size, sid)
                outcome.written_new += size
                recipe.add(fp, size, cid)
            elif keep_dup:
                outcome.removed_dup += size
                recipe.add(fp, size, loc.cid)
            else:
                # short-sequence duplicate: write it again
                cid = self.res.store.append(fp, size)
                new_loc = ChunkLocation(cid, sid)
                self.res.index.update(fp, new_loc)
                self._stream_new[fp] = new_loc
                self.total_rewritten_bytes += size
                self.total_rewritten_chunks += 1
                outcome.rewritten_dup += size
                recipe.add(fp, size, cid)
        return outcome
