"""iDedup-like engine (Srinivasan et al., FAST'12).

iDedup targets the same fragmentation problem as DeFrag from the other
side: instead of scoring stored segments (SPL), it only deduplicates
*sequences* — maximal runs of consecutive duplicate chunks whose stored
copies are physically contiguous (same container here). Runs shorter
than a threshold are written anyway: a short run saves little space but
costs a whole seek at read time, so eliminating it is a bad trade.

Mechanically this engine shares DDFS's identification ladder (bloom +
prefetch cache + on-disk index) and adds a placement stage like DeFrag's,
so all three selective schemes are directly comparable on one substrate.
The relationship to the paper's policy: iDedup's criterion is *adjacency
run length in the incoming stream*, DeFrag's is *share of the incoming
segment per stored segment* — the ablation benches let you see where the
two disagree.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.api import register_engine
from repro._util import check_positive
from repro.dedup.base import CostModel, EngineResources, SegmentOutcome
from repro.dedup.ddfs import DDFSEngine
from repro.index.full_index import ChunkLocation
from repro.segmenting.segmenter import Segment


class IDedupEngine(DDFSEngine):
    """Selective dedup by minimum duplicate-sequence length.

    Args:
        resources, cost, bloom_capacity, bloom_fp_rate, cache_containers,
            prefetch_ahead: as in :class:`~repro.dedup.ddfs.DDFSEngine`.
        min_sequence: minimum run of stream-consecutive duplicates (whose
            copies share a container) that is allowed to deduplicate;
            shorter runs are rewritten. iDedup's paper sweeps 2-32.
    """

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        *,
        min_sequence: int = 8,
        **ddfs_kwargs,
    ) -> None:
        super().__init__(resources, cost, **ddfs_kwargs)
        check_positive("min_sequence", min_sequence)
        self.min_sequence = int(min_sequence)
        self.total_rewritten_bytes = 0
        self.total_rewritten_chunks = 0

    # ------------------------------------------------------------------

    def _dup_runs(self, locations: List[Optional[ChunkLocation]]) -> List[bool]:
        """For each chunk, True if it belongs to a *deduplicable* run:
        a maximal run of consecutive duplicates resolved to one container
        with length >= min_sequence."""
        n = len(locations)
        keep = [False] * n
        i = 0
        while i < n:
            loc = locations[i]
            if loc is None:
                i += 1
                continue
            j = i + 1
            while j < n and locations[j] is not None and locations[j].cid == loc.cid:
                j += 1
            if j - i >= self.min_sequence:
                for k in range(i, j):
                    keep[k] = True
            i = j
        return keep

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        recipe = self._recipe

        locations = [self._resolve_duplicate(int(fp)) for fp in segment.fps]
        keep = self._dup_runs(locations)

        sid = self._allocate_sid()
        for fp, size, loc, keep_dup in zip(
            segment.fps, segment.sizes, locations, keep
        ):
            fp = int(fp)
            size = int(size)
            if loc is None:
                prior = self._stream_new.get(fp)
                if prior is not None:
                    outcome.removed_dup += size
                    recipe.add(fp, size, prior.cid)
                    continue
                cid = self._write_new_chunk(fp, size, sid)
                outcome.written_new += size
                recipe.add(fp, size, cid)
            elif keep_dup:
                outcome.removed_dup += size
                recipe.add(fp, size, loc.cid)
            else:
                # short-sequence duplicate: write it again
                cid = self.res.store.append(fp, size)
                new_loc = ChunkLocation(cid, sid)
                self.res.index.update(fp, new_loc)
                self._stream_new[fp] = new_loc
                self.total_rewritten_bytes += size
                self.total_rewritten_chunks += 1
                outcome.rewritten_dup += size
                recipe.add(fp, size, cid)
        return outcome

    # -- batch path -------------------------------------------------------

    def _dup_runs_batch(self, locations: List[Optional[ChunkLocation]]) -> List[bool]:
        """Vectorized :meth:`_dup_runs`: runs are found by diffing the
        per-chunk container-id vector (new chunks marked with -1, which no
        stored chunk uses), then length-filtered in one expression."""
        n = len(locations)
        if n == 0:
            return []
        cid_arr = np.fromiter(
            (loc.cid if loc is not None else -1 for loc in locations),
            dtype=np.int64,
            count=n,
        )
        change = np.flatnonzero(cid_arr[1:] != cid_arr[:-1]) + 1
        starts = np.concatenate((np.zeros(1, dtype=np.int64), change))
        lengths = np.diff(np.concatenate((starts, np.array([n], dtype=np.int64))))
        run_keep = (cid_arr[starts] >= 0) & (lengths >= self.min_sequence)
        return np.repeat(run_keep, lengths).tolist()

    def _process_segment_batch(self, segment: Segment) -> SegmentOutcome:
        """Segment-at-a-time identify/filter/place: vectorized
        identification (shared DDFS ladder), vectorized run detection,
        then the scalar place walk with the summary-vector inserts
        deferred to one ``add_many`` (nothing reads the bloom during
        placement). Byte-identical to the scalar path."""
        n = segment.n_chunks
        outcome = SegmentOutcome(index=segment.index, n_chunks=n, nbytes=segment.nbytes)
        assert self._recipe is not None

        locations = self._identify_batch(segment)
        keep = self._dup_runs_batch(locations)

        sid = self._allocate_sid()
        fps = segment.fps.tolist()
        sizes = segment.sizes.tolist()
        index = self.res.index
        index_insert = index.insert
        index_update = index.update
        store_append = self.res.store.append
        stream = self._stream_new
        stream_get = stream.get

        cids = [0] * n
        new_fps: List[int] = []
        written = removed = rewritten = 0
        for i in range(n):
            fp = fps[i]
            loc = locations[i]
            if loc is None:
                prior = stream_get(fp)
                if prior is not None:
                    removed += sizes[i]
                    cids[i] = prior.cid
                    continue
                size = sizes[i]
                cid = store_append(fp, size)
                nloc = ChunkLocation(cid, sid)
                index_insert(fp, nloc)
                stream[fp] = nloc
                new_fps.append(fp)
                written += size
                cids[i] = cid
            elif keep[i]:
                removed += sizes[i]
                cids[i] = loc.cid
            else:
                # short-sequence duplicate: write it again
                size = sizes[i]
                cid = store_append(fp, size)
                nloc = ChunkLocation(cid, sid)
                index_update(fp, nloc)
                stream[fp] = nloc
                self.total_rewritten_bytes += size
                self.total_rewritten_chunks += 1
                rewritten += size
                cids[i] = cid
        if new_fps:
            self.bloom.add_many(np.asarray(new_fps, dtype=np.uint64))
        outcome.written_new = written
        outcome.removed_dup = removed
        outcome.rewritten_dup = rewritten
        self._recipe.add_many(fps, sizes, cids)
        return outcome


@register_engine("iDedup")
def _build_idedup(resources, config) -> "IDedupEngine":
    """repro.api factory: iDedup with the config's calibrated parameters."""
    return IDedupEngine(
        resources,
        min_sequence=8,
        bloom_capacity=config.bloom_capacity,
        bloom_fp_rate=config.bloom_fp_rate,
        cache_containers=config.cache_containers,
        prefetch_ahead=config.prefetch_ahead,
        batch=config.batch,
    )
