"""DDFS-like engine (Zhu et al., FAST'08).

Per-chunk decision ladder, each rung cheaper than the next:

1. **Prefetch cache** (RAM) — fingerprint covered by a previously
   prefetched container's metadata: duplicate, zero disk cost.
2. **Current-stream buffer** (RAM) — fingerprint written earlier in this
   very backup (new fingerprints are buffered before the batched index
   merge, as DDFS does): duplicate against the in-flight copy.
3. **Summary vector** (bloom, RAM) — not present: definitely new, write
   it; no disk touched.
4. **On-disk index** — bloom said maybe: one bucket page fault (unless
   the page cache holds it). Hit ⇒ duplicate; *prefetch the whole
   metadata section of the container that holds it* (one more seek +
   transfer) betting on duplicate locality. Miss ⇒ bloom false positive,
   write as new.

The throughput decay of Fig. 2 is emergent: as stored placement
de-linearizes across generations, each prefetched container covers fewer
upcoming duplicates, so rung 4 — the expensive one — fires more often
per MB.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.api import register_engine
from repro._util import check_positive
from repro.dedup.base import CostModel, DedupEngine, EngineResources, SegmentOutcome
from repro.index.bloom import BloomFilter
from repro.index.cache import FingerprintPrefetchCache
from repro.index.full_index import ChunkLocation
from repro.segmenting.segmenter import Segment


class DDFSEngine(DedupEngine):
    """Exact deduplication with bloom + locality-preserved caching.

    Args:
        resources: shared disk/store/index substrate.
        cost: CPU cost model.
        bloom_capacity: summary-vector sizing (total unique chunks
            expected over the experiment's lifetime).
        bloom_fp_rate: summary-vector false-positive rate.
        cache_containers: prefetch-cache capacity, in container metadata
            sections (DDFS-scale default: 256 sections ≈ 1 GiB of
            payload coverage).
        prefetch_ahead: container metadata sections fetched per index hit.
            The container log is physically sequential ("stream-informed
            segment layout"), so one positioning streams the hit
            container's metadata plus the next ``prefetch_ahead - 1``
            sections — the read-ahead real DDFS relies on. 1 disables it.
    """

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        *,
        bloom_capacity: int = 4_000_000,
        bloom_fp_rate: float = 0.01,
        cache_containers: int = 256,
        prefetch_ahead: int = 4,
        batch: bool = True,
        obs=None,
    ) -> None:
        super().__init__(resources, cost, batch=batch, obs=obs)
        check_positive("cache_containers", cache_containers)
        check_positive("prefetch_ahead", prefetch_ahead)
        self.prefetch_ahead = int(prefetch_ahead)
        self.bloom = BloomFilter(bloom_capacity, bloom_fp_rate)
        self.cache = FingerprintPrefetchCache(cache_containers)
        # fingerprints written during the current backup, buffered in RAM
        # ahead of the batched index merge: fp -> (cid, sid)
        self._stream_new: Dict[int, ChunkLocation] = {}
        self._next_sid = 0
        self._cache_t0 = (0, 0)
        self._index_t0 = (0, 0)

    # ------------------------------------------------------------------

    def _on_begin_backup(self) -> None:
        self._stream_new = {}
        self._cache_t0 = (self.cache.stats.hits, self.cache.stats.units_inserted)
        self._index_t0 = (self.res.index.stats.lookups, self.res.index.stats.page_faults)

    def _collect_extras(self) -> dict:
        hits0, units0 = self._cache_t0
        lookups0, faults0 = self._index_t0
        hits = self.cache.stats.hits - hits0
        units = self.cache.stats.units_inserted - units0
        return {
            "cache_hits": float(hits),
            "prefetches": float(units),
            # the direct duplicate-locality observable: RAM hits bought
            # per container-metadata prefetch (decays as placement
            # de-linearizes — the paper's Fig. 2 mechanism)
            "hits_per_prefetch": hits / units if units else float(hits),
            "index_lookups": float(self.res.index.stats.lookups - lookups0),
            "index_faults": float(self.res.index.stats.page_faults - faults0),
        }

    def _allocate_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def _write_new_chunk(self, fp: int, size: int, sid: int) -> int:
        """Append a new unique chunk; returns its container id."""
        cid = self.res.store.append(fp, size)
        loc = ChunkLocation(cid, sid)
        self.res.index.insert(fp, loc)
        self._stream_new[fp] = loc
        self.bloom.add(fp)
        return cid

    def _resolve_duplicate(self, fp: int) -> Optional[ChunkLocation]:
        """The decision ladder for a possibly-duplicate chunk. Returns the
        stored location, or None if the chunk is new. Charges all disk
        costs (index fault, metadata prefetch) as they occur."""
        # rung 1: prefetch cache
        cached_cid = self.cache.lookup(fp)
        if cached_cid is not None:
            loc = self.res.index.peek(fp)
            # container metadata also records the segment id; peek is the
            # bookkeeping equivalent and charges nothing
            return loc if loc is not None else ChunkLocation(cached_cid, -1)
        # rung 2: current-stream buffer
        loc = self._stream_new.get(fp)
        if loc is not None:
            return loc
        # rung 3: summary vector
        if fp not in self.bloom:
            return None
        # rung 4: on-disk index (+ locality prefetch on a hit)
        loc = self.res.index.lookup(fp)
        if loc is None:
            return None  # bloom false positive
        self._prefetch_containers(loc.cid)
        return loc

    def _prefetch_containers(self, cid: int) -> None:
        """Locality prefetch with sequential read-ahead: one positioning,
        then the metadata sections of ``cid`` and its physical successors
        stream in order."""
        store = self.res.store
        run = [c for c in range(cid, cid + self.prefetch_ahead) if store.has(c)]
        if not run:
            return
        # one seek for the run, sequential transfer for every section;
        # the cache inserts land after the charges in one batch (nothing
        # reads the cache in between)
        units = []
        first = True
        for c in run:
            sealed = store.get(c)
            self.res.read(sealed.metadata_bytes, seeks=1 if first else 0)
            store.stats.meta_prefetches += 1
            first = False
            units.append((c, sealed.fingerprints))
        self.cache.insert_units(units)

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        sid = self._allocate_sid()
        recipe = self._recipe
        for fp, size in zip(segment.fps, segment.sizes):
            fp = int(fp)
            size = int(size)
            loc = self._resolve_duplicate(fp)
            if loc is None:
                cid = self._write_new_chunk(fp, size, sid)
                outcome.written_new += size
                recipe.add(fp, size, cid)
            else:
                outcome.removed_dup += size
                recipe.add(fp, size, loc.cid)
        return outcome

    # -- batch path -------------------------------------------------------

    def _process_segment_batch(self, segment: Segment) -> SegmentOutcome:
        """Segment-at-a-time ingest: the decision ladder of
        :meth:`_process_segment`, with the per-chunk vector work batched.

        Bloom probe positions are hashed once for the whole segment
        (:meth:`BloomFilter.begin_batch`) and prefetch-cache membership is
        resolved for a whole run of chunks per :meth:`lookup_many` call. A
        run ends at the only event that can change a later chunk's cache
        answer — an on-disk index hit, whose locality prefetch inserts
        (and may evict) cached units — at which point membership is
        re-resolved for the remaining suffix. All stateful side effects
        (writes, index faults, prefetch charges, recency refreshes)
        happen at the same chunk position as in the scalar ladder, so
        reports and the simulated clock are byte-identical.
        """
        n = segment.n_chunks
        outcome = SegmentOutcome(index=segment.index, n_chunks=n, nbytes=segment.nbytes)
        assert self._recipe is not None
        sid = self._allocate_sid()
        fps_arr = segment.fps
        fps = fps_arr.tolist()
        sizes = segment.sizes.tolist()
        bloom_batch = self.bloom.begin_batch(fps_arr)
        bloom_contains = bloom_batch.contains
        bloom_add = bloom_batch.add
        # hoisted fast path of bloom_contains: snapshot answer, falling
        # into the full check only when pending or staged inserts could
        # flip it (both containers are mutated in place, never rebound)
        bloom_m0 = bloom_batch._m0
        bloom_pending = bloom_batch._pending
        bloom_staged = bloom_batch._staged

        cache = self.cache
        touch = cache.touch_unit
        index = self.res.index
        peek = index._map.get  # bound peek fast path; fps already ints
        index_lookup = index.lookup
        index_insert = index.insert
        store_append = self.res.store.append
        store_append_run = self.res.store.append_run
        stream = self._stream_new
        stream_get = stream.get

        # all-new run candidates: a chunk that is its fingerprint's first
        # occurrence in the segment, absent from the stream buffer at
        # segment start, and summary-vector negative can only resolve one
        # way — written as new. (A later occurrence, or a stream-buffered
        # fp, hits rung 2; a bloom positive goes to rung 4; and the
        # stream buffer only grows with fps written *in* this segment, so
        # the segment-start snapshot stays authoritative for first
        # occurrences.) Maximal cache-missing runs of candidates are
        # written in one batch below.
        first_occ = np.zeros(n, dtype=bool)
        first_occ[np.unique(fps_arr, return_index=True)[1]] = True
        cand = first_occ & bloom_batch.negatives()
        if stream:
            cand &= ~np.fromiter(map(stream.__contains__, fps), dtype=bool, count=n)
        index_insert_many = index.insert_many

        cids = [0] * n
        written = removed = hits = 0
        i = 0
        while i < n:
            uids_arr = cache.lookup_many(fps if i == 0 else fps[i:])
            uids = uids_arr.tolist()
            # relative positions where the cache misses: each maximal run
            # of hits in between touches no mutable state besides LRU
            # recency, so it is resolved as one slice (see below)
            miss_rel = np.flatnonzero(uids_arr < 0)
            run_ok = (uids_arr < 0) & cand[i:]
            run_stops = np.flatnonzero(~run_ok)
            base = i
            while i < n:
                fp = fps[i]
                uid = uids[i - base]
                if uid >= 0:
                    # rung 1: prefetch cache — take the whole hit run
                    # [i, j): hits only read the cache and the index map,
                    # so nothing inside the run can change a later
                    # chunk's answer
                    r = i - base
                    k = int(np.searchsorted(miss_rel, r))
                    e = int(miss_rel[k]) if k < miss_rel.size else n - base
                    j = base + e
                    # LRU refresh with consecutive duplicates collapsed:
                    # re-moving the already-most-recent unit is a no-op,
                    # so the collapsed sequence leaves the identical order
                    run = uids_arr[r:e]
                    reps = run[np.concatenate(([0], np.flatnonzero(np.diff(run)) + 1))]
                    for u in reps.tolist():
                        touch(u)
                    hits += j - i
                    removed += sum(sizes[i:j])
                    cids[i:j] = [
                        loc.cid if (loc := peek(f)) is not None else u
                        for f, u in zip(fps[i:j], uids[r:e])
                    ]
                    i = j
                    continue
                r = i - base
                if run_ok[r]:
                    # maximal cache-missing run of all-new candidates:
                    # written in one batch (identical packing, seal
                    # charges, index/stream/bloom state) if try_stage can
                    # prove no same-batch probe collision flips a later
                    # chunk's bloom answer; scalar fallback otherwise
                    t = int(np.searchsorted(run_stops, r))
                    j = base + (int(run_stops[t]) if t < run_stops.size else n - base)
                    if j - i >= 8 and bloom_batch.try_stage(i, j):
                        run_fps = fps[i:j]
                        run_sizes = sizes[i:j]
                        cids_run = store_append_run(run_fps, run_sizes)
                        locs = [ChunkLocation(c, sid) for c in cids_run]
                        index_insert_many(run_fps, locs)
                        stream.update(zip(run_fps, locs))
                        cids[i:j] = cids_run
                        written += sum(run_sizes)
                        i = j
                        continue
                loc = stream_get(fp)
                if loc is not None:
                    # rung 2: current-stream buffer
                    cids[i] = loc.cid
                    removed += sizes[i]
                    i += 1
                    continue
                if bloom_m0[i] or ((bloom_pending or bloom_staged) and bloom_contains(i)):
                    # rung 4: on-disk index
                    loc = index_lookup(fp)
                    if loc is not None:
                        cids[i] = loc.cid
                        removed += sizes[i]
                        i += 1
                        # locality prefetch mutates the cache: re-resolve
                        # membership for the rest of the segment
                        self._prefetch_containers(loc.cid)
                        break
                # rung 3 said definitely-new, or rung 4 missed (bloom FP)
                size = sizes[i]
                cid = store_append(fp, size)
                loc = ChunkLocation(cid, sid)
                index_insert(fp, loc)
                stream[fp] = loc
                bloom_add(i)
                cids[i] = cid
                written += size
                i += 1
        bloom_batch.flush()
        cache.count_hits(hits)
        cache.count_probes(n)
        outcome.written_new = written
        outcome.removed_dup = removed
        self._recipe.add_many(fps, sizes, cids)
        return outcome

    def _identify_batch(self, segment: Segment) -> List[Optional[ChunkLocation]]:
        """Vectorized pure identification: ``[_resolve_duplicate(fp) for
        fp in segment.fps]`` with the vector work batched. No chunk is
        written during identification, so the summary vector is static
        and one ``contains_many`` answers rung 3 for the whole segment;
        cache membership is re-resolved per locality-prefetch event
        exactly as in :meth:`_process_segment_batch`. Used by the
        selective engines (DeFrag, iDedup) whose phase 1 runs before any
        placement."""
        n = segment.n_chunks
        fps_arr = segment.fps
        fps = fps_arr.tolist()
        m0_arr = self.bloom.contains_many(fps_arr)
        m0 = m0_arr.tolist()
        cache = self.cache
        touch = cache.touch_unit
        index = self.res.index
        peek = index._map.get  # bound peek fast path; fps already ints
        index_lookup = index.lookup
        stream = self._stream_new
        stream_get = stream.get
        # identification writes nothing, so the stream buffer and summary
        # vector are static for the whole segment: a cache-missing chunk
        # that is stream-absent and bloom-negative resolves to None with
        # no further work, and a whole run of them is skipped in one step
        skip = ~m0_arr
        if stream:
            skip &= ~np.fromiter(map(stream.__contains__, fps), dtype=bool, count=n)
        locations: List[Optional[ChunkLocation]] = [None] * n
        hits = 0
        i = 0
        while i < n:
            uids_arr = cache.lookup_many(fps if i == 0 else fps[i:])
            uids = uids_arr.tolist()
            miss_rel = np.flatnonzero(uids_arr < 0)
            run_ok = (uids_arr < 0) & skip[i:]
            run_stops = np.flatnonzero(~run_ok)
            base = i
            while i < n:
                fp = fps[i]
                uid = uids[i - base]
                if uid >= 0:
                    # whole hit run [i, j), as in _process_segment_batch
                    r = i - base
                    k = int(np.searchsorted(miss_rel, r))
                    e = int(miss_rel[k]) if k < miss_rel.size else n - base
                    j = base + e
                    run = uids_arr[r:e]
                    reps = run[np.concatenate(([0], np.flatnonzero(np.diff(run)) + 1))]
                    for u in reps.tolist():
                        touch(u)
                    hits += j - i
                    locations[i:j] = [
                        loc if (loc := peek(f)) is not None else ChunkLocation(u, -1)
                        for f, u in zip(fps[i:j], uids[r:e])
                    ]
                    i = j
                    continue
                r = i - base
                if run_ok[r]:
                    # definitely-new run: every location stays None
                    t = int(np.searchsorted(run_stops, r))
                    i = base + (int(run_stops[t]) if t < run_stops.size else n - base)
                    continue
                loc = stream_get(fp)
                if loc is not None:
                    locations[i] = loc
                    i += 1
                    continue
                if not m0[i]:
                    i += 1
                    continue
                loc = index_lookup(fp)
                i += 1
                if loc is None:
                    continue
                locations[i - 1] = loc
                self._prefetch_containers(loc.cid)
                break
        cache.count_hits(hits)
        cache.count_probes(n)
        return locations


@register_engine("DDFS-Like")
def _build_ddfs(resources, config) -> "DDFSEngine":
    """repro.api factory: DDFS with the config's calibrated parameters."""
    return DDFSEngine(
        resources,
        bloom_capacity=config.bloom_capacity,
        bloom_fp_rate=config.bloom_fp_rate,
        cache_containers=config.cache_containers,
        prefetch_ahead=config.prefetch_ahead,
        batch=config.batch,
    )
