"""DDFS-like engine (Zhu et al., FAST'08).

Per-chunk decision ladder, each rung cheaper than the next:

1. **Prefetch cache** (RAM) — fingerprint covered by a previously
   prefetched container's metadata: duplicate, zero disk cost.
2. **Current-stream buffer** (RAM) — fingerprint written earlier in this
   very backup (new fingerprints are buffered before the batched index
   merge, as DDFS does): duplicate against the in-flight copy.
3. **Summary vector** (bloom, RAM) — not present: definitely new, write
   it; no disk touched.
4. **On-disk index** — bloom said maybe: one bucket page fault (unless
   the page cache holds it). Hit ⇒ duplicate; *prefetch the whole
   metadata section of the container that holds it* (one more seek +
   transfer) betting on duplicate locality. Miss ⇒ bloom false positive,
   write as new.

The throughput decay of Fig. 2 is emergent: as stored placement
de-linearizes across generations, each prefetched container covers fewer
upcoming duplicates, so rung 4 — the expensive one — fires more often
per MB.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro._util import check_positive
from repro.dedup.base import CostModel, DedupEngine, EngineResources, SegmentOutcome
from repro.index.bloom import BloomFilter
from repro.index.cache import FingerprintPrefetchCache
from repro.index.full_index import ChunkLocation
from repro.segmenting.segmenter import Segment


class DDFSEngine(DedupEngine):
    """Exact deduplication with bloom + locality-preserved caching.

    Args:
        resources: shared disk/store/index substrate.
        cost: CPU cost model.
        bloom_capacity: summary-vector sizing (total unique chunks
            expected over the experiment's lifetime).
        bloom_fp_rate: summary-vector false-positive rate.
        cache_containers: prefetch-cache capacity, in container metadata
            sections (DDFS-scale default: 256 sections ≈ 1 GiB of
            payload coverage).
        prefetch_ahead: container metadata sections fetched per index hit.
            The container log is physically sequential ("stream-informed
            segment layout"), so one positioning streams the hit
            container's metadata plus the next ``prefetch_ahead - 1``
            sections — the read-ahead real DDFS relies on. 1 disables it.
    """

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        *,
        bloom_capacity: int = 4_000_000,
        bloom_fp_rate: float = 0.01,
        cache_containers: int = 256,
        prefetch_ahead: int = 4,
    ) -> None:
        super().__init__(resources, cost)
        check_positive("cache_containers", cache_containers)
        check_positive("prefetch_ahead", prefetch_ahead)
        self.prefetch_ahead = int(prefetch_ahead)
        self.bloom = BloomFilter(bloom_capacity, bloom_fp_rate)
        self.cache = FingerprintPrefetchCache(cache_containers)
        # fingerprints written during the current backup, buffered in RAM
        # ahead of the batched index merge: fp -> (cid, sid)
        self._stream_new: Dict[int, ChunkLocation] = {}
        self._next_sid = 0
        self._cache_t0 = (0, 0)
        self._index_t0 = (0, 0)

    # ------------------------------------------------------------------

    def _on_begin_backup(self) -> None:
        self._stream_new = {}
        self._cache_t0 = (self.cache.stats.hits, self.cache.stats.units_inserted)
        self._index_t0 = (self.res.index.stats.lookups, self.res.index.stats.page_faults)

    def _collect_extras(self) -> dict:
        hits0, units0 = self._cache_t0
        lookups0, faults0 = self._index_t0
        hits = self.cache.stats.hits - hits0
        units = self.cache.stats.units_inserted - units0
        return {
            "cache_hits": float(hits),
            "prefetches": float(units),
            # the direct duplicate-locality observable: RAM hits bought
            # per container-metadata prefetch (decays as placement
            # de-linearizes — the paper's Fig. 2 mechanism)
            "hits_per_prefetch": hits / units if units else float(hits),
            "index_lookups": float(self.res.index.stats.lookups - lookups0),
            "index_faults": float(self.res.index.stats.page_faults - faults0),
        }

    def _allocate_sid(self) -> int:
        sid = self._next_sid
        self._next_sid += 1
        return sid

    def _write_new_chunk(self, fp: int, size: int, sid: int) -> int:
        """Append a new unique chunk; returns its container id."""
        cid = self.res.store.append(fp, size)
        loc = ChunkLocation(cid, sid)
        self.res.index.insert(fp, loc)
        self._stream_new[fp] = loc
        self.bloom.add(fp)
        return cid

    def _resolve_duplicate(self, fp: int) -> Optional[ChunkLocation]:
        """The decision ladder for a possibly-duplicate chunk. Returns the
        stored location, or None if the chunk is new. Charges all disk
        costs (index fault, metadata prefetch) as they occur."""
        # rung 1: prefetch cache
        cached_cid = self.cache.lookup(fp)
        if cached_cid is not None:
            loc = self.res.index.peek(fp)
            # container metadata also records the segment id; peek is the
            # bookkeeping equivalent and charges nothing
            return loc if loc is not None else ChunkLocation(cached_cid, -1)
        # rung 2: current-stream buffer
        loc = self._stream_new.get(fp)
        if loc is not None:
            return loc
        # rung 3: summary vector
        if fp not in self.bloom:
            return None
        # rung 4: on-disk index (+ locality prefetch on a hit)
        loc = self.res.index.lookup(fp)
        if loc is None:
            return None  # bloom false positive
        self._prefetch_containers(loc.cid)
        return loc

    def _prefetch_containers(self, cid: int) -> None:
        """Locality prefetch with sequential read-ahead: one positioning,
        then the metadata sections of ``cid`` and its physical successors
        stream in order."""
        store = self.res.store
        run = [c for c in range(cid, cid + self.prefetch_ahead) if store.has(c)]
        if not run:
            return
        # one seek for the run, sequential transfer for every section
        first = True
        for c in run:
            sealed = store.get(c)
            self.res.disk.read(sealed.metadata_bytes, seeks=1 if first else 0)
            store.stats.meta_prefetches += 1
            first = False
            self.cache.insert_unit(c, sealed.fingerprints)

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        sid = self._allocate_sid()
        recipe = self._recipe
        for fp, size in zip(segment.fps, segment.sizes):
            fp = int(fp)
            size = int(size)
            loc = self._resolve_duplicate(fp)
            if loc is None:
                cid = self._write_new_chunk(fp, size, sid)
                outcome.written_new += size
                recipe.add(fp, size, cid)
            else:
                outcome.removed_dup += size
                recipe.add(fp, size, loc.cid)
        return outcome
