"""Deduplication engines.

All engines share one contract (:class:`~repro.dedup.base.DedupEngine`):
segments in, per-segment classification out, every cost charged to a
shared simulated disk + CPU model. Included engines:

* :class:`~repro.dedup.exact.ExactEngine` — the naive full-index baseline
  (every chunk consults the on-disk index): exact dedup, crushed by the
  disk bottleneck the paper opens with.
* :class:`~repro.dedup.ddfs.DDFSEngine` — DDFS-like (Zhu et al. FAST'08):
  bloom summary vector + stream-informed layout + locality-preserved
  container-metadata caching. Exact dedup, throughput hostage to
  placement linearity (paper Fig. 2).
* :class:`~repro.dedup.silo.SiLoEngine` — SiLo-like (Xia et al. ATC'11):
  similarity-sampled segments grouped into blocks; near-exact dedup whose
  efficiency decays with duplicate locality (paper Fig. 3).

* :class:`~repro.dedup.revdedup.RevDedupEngine` — coarse inline dedup,
  then an out-of-line reverse-reference pass that repoints *old* backups
  at the newest copies so the latest backup stays sequential.
* :class:`~repro.dedup.hybrid.HybridEngine` — RAM-cache-only inline
  dedup; a deferred out-of-line pass runs the charged exact index probes
  and reclaims the duplicates ingest wrote through.

The paper's contribution, :class:`~repro.core.defrag.DeFragEngine`, lives
in :mod:`repro.core` and builds on the DDFS machinery here.

:mod:`~repro.dedup.pipeline` drives whole workloads through an engine and
attaches ground-truth redundancy accounting to every report.
"""

from repro.dedup.base import (
    BackupReport,
    CostModel,
    DedupEngine,
    EngineResources,
    MaintenanceReport,
    SegmentOutcome,
)
from repro.dedup.exact import ExactEngine
from repro.dedup.ddfs import DDFSEngine
from repro.dedup.silo import SiLoEngine
from repro.dedup.idedup import IDedupEngine
from repro.dedup.sparse import SparseIndexEngine
from repro.dedup.revdedup import RevDedupEngine
from repro.dedup.hybrid import HybridEngine
from repro.dedup.pipeline import (
    GroundTruth,
    ingest_bytes,
    run_backup,
    run_workload,
    run_workload_with_maintenance,
)

__all__ = [
    "BackupReport",
    "CostModel",
    "DedupEngine",
    "EngineResources",
    "MaintenanceReport",
    "SegmentOutcome",
    "ExactEngine",
    "DDFSEngine",
    "SiLoEngine",
    "IDedupEngine",
    "SparseIndexEngine",
    "RevDedupEngine",
    "HybridEngine",
    "GroundTruth",
    "ingest_bytes",
    "run_backup",
    "run_workload",
    "run_workload_with_maintenance",
]
