"""Sparse-Indexing engine (Lillibridge et al., FAST'09).

The other classic answer to the disk bottleneck (cited in the paper's
§II-B): keep only a *sample* of fingerprints in RAM. Each incoming
segment's sampled "hooks" vote for stored segments whose manifests
contain those hooks; the top few *champions* have their manifests loaded
from disk and the segment deduplicates against them (plus the prefetch
cache). Like SiLo, detection is near-exact: duplicates outside every
champion's manifest are silently stored again.

Components exercised: :func:`repro.index.sampling.sample_fingerprints`
for hooks, a RAM hook index with bounded per-hook history, on-disk
manifests priced per load.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

import numpy as np

from repro.api import register_engine
from repro._util import check_positive
from repro.dedup.base import CostModel, DedupEngine, EngineResources, SegmentOutcome
from repro.index.cache import FingerprintPrefetchCache
from repro.index.full_index import ChunkLocation
from repro.index.sampling import sample_fingerprints
from repro.segmenting.segmenter import Segment
from repro.storage.container import CHUNK_METADATA_BYTES


class SparseIndexEngine(DedupEngine):
    """Sample-based near-exact deduplication.

    Args:
        resources: shared substrate (the on-disk chunk index is unused —
            sparse indexing exists to avoid it).
        cost: CPU cost model.
        sample_rate: one hook per ``sample_rate`` fingerprints (by value).
        max_champions: manifests loaded per incoming segment.
        hook_history: stored segments remembered per hook (RAM bound).
        cache_manifests: prefetch-cache capacity, in manifests.
    """

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        *,
        sample_rate: int = 32,
        max_champions: int = 2,
        hook_history: int = 3,
        cache_manifests: int = 16,
        batch: bool = True,
        obs=None,
    ) -> None:
        super().__init__(resources, cost, batch=batch, obs=obs)
        check_positive("sample_rate", sample_rate)
        check_positive("max_champions", max_champions)
        check_positive("hook_history", hook_history)
        self.sample_rate = int(sample_rate)
        self.max_champions = int(max_champions)
        self.hook_history = int(hook_history)
        self.cache = FingerprintPrefetchCache(cache_manifests)
        # RAM hook index: hook fingerprint -> most recent manifest ids
        self._hooks: Dict[int, List[int]] = {}
        # manifests: stored-segment id -> logical fingerprints (charged on load)
        self._manifests: Dict[int, np.ndarray] = {}
        self._locations: Dict[int, ChunkLocation] = {}
        self._stream_new: Dict[int, ChunkLocation] = {}
        self._next_mid = 0
        self.manifest_loads = 0
        self._loads_t0 = 0

    # ------------------------------------------------------------------

    def _on_begin_backup(self) -> None:
        self._stream_new = {}
        self._loads_t0 = self.manifest_loads

    def _champions(self, hooks: np.ndarray) -> List[int]:
        """Rank candidate manifests by hook votes; return the top few."""
        votes: Counter = Counter()
        for h in hooks:
            for mid in self._hooks.get(int(h), ()):
                votes[mid] += 1
        ranked = sorted(votes.items(), key=lambda kv: (-kv[1], -kv[0]))
        return [mid for mid, _ in ranked[: self.max_champions]]

    def _load_manifest(self, mid: int) -> None:
        if self.cache.has_unit(mid):
            return
        fps = self._manifests[mid]
        self.res.read(len(fps) * CHUNK_METADATA_BYTES, seeks=1)
        self.manifest_loads += 1
        self.cache.insert_unit(mid, fps)

    def _register(self, segment: Segment, mid: int, hooks: np.ndarray) -> None:
        self._manifests[mid] = segment.fps.copy()
        for h in hooks:
            history = self._hooks.setdefault(int(h), [])
            history.append(mid)
            if len(history) > self.hook_history:
                del history[0]

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        recipe = self._recipe
        if segment.n_chunks == 0:
            return outcome

        hooks = sample_fingerprints(segment.fps, self.sample_rate)
        for mid in self._champions(hooks):
            self._load_manifest(mid)

        mid = self._next_mid
        self._next_mid += 1
        for fp, size in zip(segment.fps, segment.sizes):
            fp = int(fp)
            size = int(size)
            loc: Optional[ChunkLocation] = None
            if self.cache.lookup(fp) is not None:
                loc = self._locations.get(fp)
            if loc is None:
                loc = self._stream_new.get(fp)
            if loc is None:
                cid = self.res.store.append(fp, size)
                loc = ChunkLocation(cid, mid)
                self._locations[fp] = loc
                self._stream_new[fp] = loc
                outcome.written_new += size
                recipe.add(fp, size, cid)
            else:
                outcome.removed_dup += size
                recipe.add(fp, size, loc.cid)

        self._register(segment, mid, hooks)
        return outcome

    def _collect_extras(self) -> dict:
        return {
            "manifest_loads": float(self.manifest_loads - self._loads_t0),
            "hook_index_entries": float(len(self._hooks)),
        }


@register_engine("SparseIndex")
def _build_sparse(resources, config) -> "SparseIndexEngine":
    """repro.api factory: sparse indexing sized from the SiLo knobs."""
    return SparseIndexEngine(
        resources, cache_manifests=config.silo_cache_blocks * 4, batch=config.batch
    )
