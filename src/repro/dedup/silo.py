"""SiLo-like engine (Xia et al., USENIX ATC'11).

SiLo keeps only one *representative fingerprint per segment* in RAM (the
similarity index) — a tiny fraction of the full chunk index — and makes
dedup near-exact instead of exact:

1. Summarize the incoming segment by its minimum fingerprint.
2. Probe the RAM similarity index. On a hit, read the matching *block's*
   fingerprint index from disk (one seek + metadata transfer) into the
   prefetch cache — the block holds several contiguous segments of the
   stream that stored the similar segment, so duplicate locality makes
   neighbouring duplicates resolvable from RAM too.
3. Dedup the segment's chunks against the cache (and the current-stream
   buffer). Chunks not found are written as new — even when they are
   true duplicates stored in some *dissimilar* block. Those silent misses
   are exactly the paper's "deduplication efficiency" loss, and they grow
   as placement de-linearizes (Fig. 3 / Fig. 5).

Block metadata indexes **all** logical chunks of its member segments
(duplicates included, with their locations), matching SiLo's on-disk
segment-index layout; without that, cross-generation similarity hits
would find nothing.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.api import register_engine
from repro._util import MIB, check_positive
from repro.dedup.base import CostModel, DedupEngine, EngineResources, SegmentOutcome
from repro.index.cache import FingerprintPrefetchCache
from repro.index.full_index import ChunkLocation
from repro.index.similarity import SimilarityIndex
from repro.segmenting.blocks import Block, BlockBuilder, representative_fingerprint
from repro.segmenting.segmenter import Segment


class SiLoEngine(DedupEngine):
    """Similarity+locality near-exact deduplication.

    Args:
        resources: shared disk/store/index substrate (the on-disk chunk
            index is *not* consulted — SiLo's point is to avoid it; chunk
            locations ride in block metadata, modeled by a RAM map).
        cost: CPU cost model.
        block_bytes: logical bytes of segment data grouped per block.
        cache_blocks: prefetch-cache capacity in block indexes.
        similarity_capacity: bounded RAM budget of the similarity index,
            in representative entries (None = unbounded oracle).
    """

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        *,
        block_bytes: int = 8 * MIB,
        cache_blocks: int = 64,
        similarity_capacity: Optional[int] = None,
        batch: bool = True,
        obs=None,
    ) -> None:
        super().__init__(resources, cost, batch=batch, obs=obs)
        check_positive("cache_blocks", cache_blocks)
        self.similarity = SimilarityIndex(capacity=similarity_capacity)
        self.cache = FingerprintPrefetchCache(cache_blocks)
        self._builder = BlockBuilder(block_bytes)
        self._blocks: Dict[int, Block] = {}
        # fp -> container location for every chunk that has a stored copy;
        # RAM bookkeeping standing in for the locations kept inside block
        # metadata on disk (only consulted after a cache/buffer hit).
        self._locations: Dict[int, ChunkLocation] = {}
        self._stream_new: Dict[int, ChunkLocation] = {}

    # ------------------------------------------------------------------

    def _on_begin_backup(self) -> None:
        self._stream_new = {}
        self._cache_t0 = (self.cache.stats.hits, self.cache.stats.units_inserted)
        self._sim_t0 = (self.similarity.stats.lookups, self.similarity.stats.hits)

    def _collect_extras(self) -> dict:
        hits0, units0 = self._cache_t0
        lookups0, sim_hits0 = self._sim_t0
        hits = self.cache.stats.hits - hits0
        units = self.cache.stats.units_inserted - units0
        lookups = self.similarity.stats.lookups - lookups0
        sim_hits = self.similarity.stats.hits - sim_hits0
        return {
            "cache_hits": float(hits),
            "block_fetches": float(units),
            "hits_per_prefetch": hits / units if units else float(hits),
            "similarity_lookups": float(lookups),
            "similarity_hit_rate": sim_hits / lookups if lookups else 0.0,
        }

    def _on_end_backup(self) -> None:
        # a backup boundary always closes the open block
        self._seal_block()

    def _seal_block(self) -> None:
        block = self._builder.seal()
        if block is None:
            return
        self._blocks[block.bid] = block
        # the block's fingerprint index is written with it: sequential
        # metadata transfer (its payload was already charged by the
        # container store as chunks were appended)
        self.res.write(block.metadata_bytes)
        for rep in block.segment_reps:
            self.similarity.insert(int(rep), block.bid)

    def _fetch_block(self, bid: int) -> None:
        """Read a block's fingerprint index into the prefetch cache."""
        if self.cache.has_unit(bid):
            return
        block = self._blocks[bid]
        self.res.read(block.metadata_bytes, seeks=1)
        self.cache.insert_unit(bid, block.fingerprints)

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        recipe = self._recipe

        if segment.n_chunks:
            rep = representative_fingerprint(segment.fps)
            bid = self.similarity.lookup(rep)
            if bid is not None:
                self._fetch_block(bid)

        for fp, size in zip(segment.fps, segment.sizes):
            fp = int(fp)
            size = int(size)
            loc: Optional[ChunkLocation] = None
            if self.cache.lookup(fp) is not None:
                loc = self._locations.get(fp)
            if loc is None:
                loc = self._stream_new.get(fp)
            if loc is None:
                # new (or undetected duplicate): store it
                cid = self.res.store.append(fp, size)
                loc = ChunkLocation(cid, -1)
                self._locations[fp] = loc
                self._stream_new[fp] = loc
                outcome.written_new += size
                recipe.add(fp, size, cid)
            else:
                outcome.removed_dup += size
                recipe.add(fp, size, loc.cid)

        # every logical chunk of the segment is indexed in its block
        self._builder.add_segment(segment, segment.fps, segment.nbytes)
        if self._builder.should_seal():
            self._seal_block()
        return outcome

    # -- batch path -------------------------------------------------------

    def _process_segment_batch(self, segment: Segment) -> SegmentOutcome:
        """Segment-at-a-time ingest. After the similarity probe and the
        (at most one) block fetch, the prefetch cache is static for the
        rest of the segment — writes never touch it — so one
        :meth:`lookup_many` resolves cache membership for the whole
        fingerprint vector up front; locations then come from the RAM
        maps, live per chunk. Byte-identical to the scalar path."""
        n = segment.n_chunks
        outcome = SegmentOutcome(index=segment.index, n_chunks=n, nbytes=segment.nbytes)
        assert self._recipe is not None

        fps_arr = segment.fps
        if n:
            rep = representative_fingerprint(fps_arr)
            bid = self.similarity.lookup(rep)
            if bid is not None:
                self._fetch_block(bid)

        cache = self.cache
        touch = cache.touch_unit
        uids_arr = cache.lookup_many(fps_arr)
        uids = uids_arr.tolist()
        miss_pos = np.flatnonzero(uids_arr < 0)
        fps = fps_arr.tolist()
        sizes = segment.sizes.tolist()
        locations = self._locations
        locations_get = locations.get
        store_append = self.res.store.append
        stream = self._stream_new
        stream_get = stream.get

        cids = [0] * n
        written = removed = hits = 0
        i = 0
        while i < n:
            fp = fps[i]
            uid = uids[i]
            loc: Optional[ChunkLocation] = None
            if uid >= 0:
                # Take the maximal run [i, j) of cache hits: hits read
                # the static cache and the location map — which writes
                # grow, but only with fingerprints the cache cannot
                # cover — so nothing inside the run changes a later
                # chunk's answer. LRU refreshes collapse consecutive
                # duplicate units (re-moving the most-recent unit is a
                # no-op, so the collapsed order is identical).
                k = int(np.searchsorted(miss_pos, i))
                j = int(miss_pos[k]) if k < miss_pos.size else n
                found = [locations_get(f) for f in fps[i:j]]
                if None not in found:
                    run = uids_arr[i:j]
                    reps = run[np.concatenate(([0], np.flatnonzero(np.diff(run)) + 1))]
                    for u in reps.tolist():
                        touch(u)
                    hits += j - i
                    removed += sum(sizes[i:j])
                    cids[i:j] = [loc.cid for loc in found]
                    i = j
                    continue
                # a cached fingerprint with no stored copy cannot happen
                # for real blocks (every block fp was stored), but the
                # scalar ladder tolerates it — resolve this chunk alone
                touch(uid)
                hits += 1
                loc = found[0]
            if loc is None:
                loc = stream_get(fp)
            if loc is None:
                # new (or undetected duplicate): store it
                size = sizes[i]
                cid = store_append(fp, size)
                loc = ChunkLocation(cid, -1)
                locations[fp] = loc
                stream[fp] = loc
                written += size
                cids[i] = cid
            else:
                removed += sizes[i]
                cids[i] = loc.cid
            i += 1
        cache.count_hits(hits)
        cache.count_probes(n)
        outcome.written_new = written
        outcome.removed_dup = removed
        self._recipe.add_many(fps, sizes, cids)

        # every logical chunk of the segment is indexed in its block
        self._builder.add_segment(segment, fps_arr, segment.nbytes)
        if self._builder.should_seal():
            self._seal_block()
        return outcome


@register_engine("SiLo-Like")
def _build_silo(resources, config) -> "SiLoEngine":
    """repro.api factory: SiLo with the config's calibrated parameters."""
    return SiLoEngine(
        resources,
        block_bytes=config.silo_block_bytes,
        cache_blocks=config.silo_cache_blocks,
        similarity_capacity=config.silo_similarity_capacity,
        batch=config.batch,
    )
