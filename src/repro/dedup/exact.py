"""The naive full-index baseline.

Every chunk consults the on-disk chunk index — no summary vector, no
locality prefetching. Deduplication is exact, but almost every lookup is
a random bucket-page read: the undiluted "disk bottleneck" of the
paper's introduction and of DDFS's motivation. Useful as the lower bound
in throughput comparisons and as the correctness oracle for dedup ratios
(it removes every detectable duplicate, like DDFS).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dedup.base import CostModel, DedupEngine, EngineResources, SegmentOutcome
from repro.index.full_index import ChunkLocation
from repro.segmenting.segmenter import Segment


class ExactEngine(DedupEngine):
    """Exact dedup via the on-disk index alone."""

    def __init__(self, resources: EngineResources, cost: Optional[CostModel] = None) -> None:
        super().__init__(resources, cost)
        # current-stream buffer (pre-merge), as in DDFSEngine
        self._stream_new: Dict[int, ChunkLocation] = {}
        self._next_sid = 0

    def _on_begin_backup(self) -> None:
        self._stream_new = {}

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        recipe = self._recipe
        sid = self._next_sid
        self._next_sid += 1
        for fp, size in zip(segment.fps, segment.sizes):
            fp = int(fp)
            size = int(size)
            loc = self._stream_new.get(fp)
            if loc is None:
                loc = self.res.index.lookup(fp)
            if loc is None:
                cid = self.res.store.append(fp, size)
                new_loc = ChunkLocation(cid, sid)
                self.res.index.insert(fp, new_loc)
                self._stream_new[fp] = new_loc
                outcome.written_new += size
                recipe.add(fp, size, cid)
            else:
                outcome.removed_dup += size
                recipe.add(fp, size, loc.cid)
        return outcome
