"""The naive full-index baseline.

Every chunk consults the on-disk chunk index — no summary vector, no
locality prefetching. Deduplication is exact, but almost every lookup is
a random bucket-page read: the undiluted "disk bottleneck" of the
paper's introduction and of DDFS's motivation. Useful as the lower bound
in throughput comparisons and as the correctness oracle for dedup ratios
(it removes every detectable duplicate, like DDFS).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api import register_engine
from repro.dedup.base import CostModel, DedupEngine, EngineResources, SegmentOutcome
from repro.index.full_index import ChunkLocation
from repro.segmenting.segmenter import Segment


class ExactEngine(DedupEngine):
    """Exact dedup via the on-disk index alone."""

    def __init__(
        self,
        resources: EngineResources,
        cost: Optional[CostModel] = None,
        batch: bool = True,
        obs=None,
    ) -> None:
        super().__init__(resources, cost, batch=batch, obs=obs)
        # current-stream buffer (pre-merge), as in DDFSEngine
        self._stream_new: Dict[int, ChunkLocation] = {}
        self._next_sid = 0

    def _on_begin_backup(self) -> None:
        self._stream_new = {}

    def _process_segment(self, segment: Segment) -> SegmentOutcome:
        outcome = SegmentOutcome(
            index=segment.index, n_chunks=segment.n_chunks, nbytes=segment.nbytes
        )
        assert self._recipe is not None
        recipe = self._recipe
        sid = self._next_sid
        self._next_sid += 1
        for fp, size in zip(segment.fps, segment.sizes):
            fp = int(fp)
            size = int(size)
            loc = self._stream_new.get(fp)
            if loc is None:
                loc = self.res.index.lookup(fp)
            if loc is None:
                cid = self.res.store.append(fp, size)
                new_loc = ChunkLocation(cid, sid)
                self.res.index.insert(fp, new_loc)
                self._stream_new[fp] = new_loc
                outcome.written_new += size
                recipe.add(fp, size, cid)
            else:
                outcome.removed_dup += size
                recipe.add(fp, size, loc.cid)
        return outcome

    # -- batch path -------------------------------------------------------

    def _process_segment_batch(self, segment: Segment) -> SegmentOutcome:
        """Segment-at-a-time ingest. Chunks are routed by RAM-model index
        membership (new vs stored); every routed chunk still pays its
        authoritative :meth:`lookup` — the lookups of a run of duplicates
        are merely deferred into one :meth:`lookup_many` call, flushed
        just before the next new chunk's append so every disk charge and
        page-cache touch lands in the exact scalar position. The index
        only ever gains entries mid-segment (for fingerprints that are
        simultaneously entered into the stream buffer, which is checked
        first), so routing at walk time agrees with the deferred lookup's
        result. Byte-identical to the scalar path."""
        n = segment.n_chunks
        outcome = SegmentOutcome(index=segment.index, n_chunks=n, nbytes=segment.nbytes)
        assert self._recipe is not None
        sid = self._next_sid
        self._next_sid += 1

        fps = segment.fps.tolist()
        sizes = segment.sizes.tolist()
        index = self.res.index
        contains = index.__contains__
        lookup_many = index.lookup_many
        index_insert = index.insert
        store_append = self.res.store.append
        stream = self._stream_new
        stream_get = stream.get

        cids = [0] * n
        pending: List[int] = []
        written = removed = 0
        for i in range(n):
            fp = fps[i]
            loc = stream_get(fp)
            if loc is not None:
                removed += sizes[i]
                cids[i] = loc.cid
                continue
            pending.append(i)
            if contains(fp):
                removed += sizes[i]
                continue
            # new chunk: resolve the deferred lookups — the new chunk's
            # own negative lookup included — before its append, matching
            # the scalar charge order
            for j, jloc in zip(pending, lookup_many([fps[j] for j in pending])):
                if jloc is not None:
                    cids[j] = jloc.cid
            pending.clear()
            size = sizes[i]
            cid = store_append(fp, size)
            nloc = ChunkLocation(cid, sid)
            index_insert(fp, nloc)
            stream[fp] = nloc
            written += size
            cids[i] = cid
        if pending:
            for j, jloc in zip(pending, lookup_many([fps[j] for j in pending])):
                cids[j] = jloc.cid
            pending.clear()
        outcome.written_new = written
        outcome.removed_dup = removed
        self._recipe.add_many(fps, sizes, cids)
        return outcome


@register_engine("Exact")
def _build_exact(resources, config) -> "ExactEngine":
    """repro.api factory: the naive full-index baseline."""
    return ExactEngine(resources, batch=config.batch)
