"""Command-line entry point: regenerate any figure or ablation.

Usage::

    python -m repro fig2 [--scale small|default|large] [--seed N]
    python -m repro fig4 --alpha 0.2
    python -m repro all --scale small
    python -m repro alpha-sweep
    defrag-repro fig6            # console script, same thing
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import ablations, fig2, fig3, fig4, fig5, fig6
from repro.experiments import extensions
from repro.experiments.common import FigureResult
from repro.experiments.config import ExperimentConfig

_FIGURES: Dict[str, Callable[[ExperimentConfig], FigureResult]] = {
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "alpha-sweep": ablations.alpha_sweep,
    "segment-ablation": ablations.segment_ablation,
    "cache-ablation": ablations.cache_ablation,
    "related-work": extensions.related_work_comparison,
    "gc-study": extensions.gc_study,
}

_FLOAT_FMT = {"fig3": "{:.3f}", "fig5": "{:.3f}"}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="defrag-repro",
        description="Regenerate the SC'12 DeFrag paper's evaluation figures "
        "on the simulated substrate.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_FIGURES) + ["all", "report"],
        help="which figure/ablation to regenerate ('all' runs fig2..fig6; "
        "'report' renders everything as one markdown document)",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=["small", "default", "large"],
        help="experiment scale preset (default: default)",
    )
    parser.add_argument("--seed", type=int, default=None, help="workload seed override")
    parser.add_argument(
        "--alpha", type=float, default=None, help="DeFrag SPL threshold override"
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="also write each result as JSON and CSV into DIR",
    )
    return parser


def _make_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.by_name(args.scale)
    if args.seed is not None:
        config = config.with_(seed=args.seed)
    if args.alpha is not None:
        config = config.with_(alpha=args.alpha)
    return config


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    config = _make_config(args)
    if args.experiment == "report":
        from repro.experiments.report import generate_markdown

        text = generate_markdown(config)
        print(text)
        if args.save is not None:
            from pathlib import Path

            outdir = Path(args.save)
            outdir.mkdir(parents=True, exist_ok=True)
            (outdir / "report.md").write_text(text)
        return 0
    names = ["fig2", "fig3", "fig4", "fig5", "fig6"] if args.experiment == "all" else [
        args.experiment
    ]
    for name in names:
        result = _FIGURES[name](config)
        print(result.table(fmt=_FLOAT_FMT.get(name, "{:.1f}")))
        print()
        if args.save is not None:
            from pathlib import Path

            from repro.experiments.io import save_csv, save_json

            outdir = Path(args.save)
            outdir.mkdir(parents=True, exist_ok=True)
            save_json(result, outdir / f"{name}.json")
            save_csv(result, outdir / f"{name}.csv")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
