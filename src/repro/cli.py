"""Command-line entry point: regenerate any figure or ablation.

Usage::

    python -m repro fig2 [--scale small|default|large] [--seed N]
    python -m repro fig4 --alpha 0.2
    python -m repro all --scale small --jobs 4
    python -m repro alpha-sweep --jobs 5
    python -m repro fig6 --restore-policy belady --faa-window 2048 --readahead
    python -m repro restore-ablation --scale small --jobs 6
    python -m repro bench --quick
    python -m repro trace fig4 --scale small --events out.jsonl
    python -m repro trace fig4 --scale small --perfetto trace.json
    python -m repro stats --last
    python -m repro dash --out dash.html
    python -m repro chaos --crash-points 200 --seed 7
    defrag-repro fig6            # console script, same thing

``--jobs N`` fans the experiment's independent cells (one engine x
config x alpha point each) across N worker processes; output is
byte-identical to ``--jobs 1`` (see DESIGN.md §9).
"""

from __future__ import annotations

import argparse
import importlib
import logging
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.experiments.config import SCALE_NAMES, ExperimentConfig

#: where ``trace`` drops its metrics snapshot for ``stats --last``
LAST_STATS_PATH = Path(".repro_stats.json")

# experiment name -> "module:function", resolved on demand so one
# figure's run doesn't pay for importing every other harness
_FIGURES: Dict[str, str] = {
    "fig2": "repro.experiments.fig2:run",
    "fig3": "repro.experiments.fig3:run",
    "fig4": "repro.experiments.fig4:run",
    "fig5": "repro.experiments.fig5:run",
    "fig6": "repro.experiments.fig6:run",
    "alpha-sweep": "repro.experiments.ablations:alpha_sweep",
    "segment-ablation": "repro.experiments.ablations:segment_ablation",
    "cache-ablation": "repro.experiments.ablations:cache_ablation",
    "restore-ablation": "repro.experiments.restore_ablation:run",
    "related-work": "repro.experiments.extensions:related_work_comparison",
    "gc-study": "repro.experiments.extensions:gc_study",
    "frontier": "repro.experiments.frontier:run",
    "tenants": "repro.experiments.tenants:run",
}


def _resolve(name: str) -> Callable[[ExperimentConfig], "FigureResult"]:
    modname, funcname = _FIGURES[name].split(":")
    return getattr(importlib.import_module(modname), funcname)

_FLOAT_FMT = {
    "fig3": "{:.3f}",
    "fig5": "{:.3f}",
    "frontier": "{:.2f}",
    "tenants": "{:.2f}",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="defrag-repro",
        description="Regenerate the SC'12 DeFrag paper's evaluation figures "
        "on the simulated substrate.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_FIGURES)
        + ["all", "report", "bench", "trace", "stats", "dash", "chaos"],
        help="which figure/ablation to regenerate ('all' runs fig2..fig6; "
        "'report' renders everything as one markdown document; 'bench' "
        "times the ingest path against the committed baseline; 'trace' "
        "reruns one figure with observability on; 'stats' prints the "
        "last trace's metrics snapshot; 'dash' renders a standalone "
        "HTML dashboard from trace snapshots, committed bench "
        "baselines, and the bench history; 'chaos' sweeps seeded crash "
        "points through the fault-injection/recovery subsystem)",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="for 'trace': the figure/ablation to rerun under tracing "
        "(e.g. 'trace fig4')",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="library log level: -v INFO, -vv DEBUG (default WARNING)",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="library log level ERROR (overrides -v)",
    )
    parser.add_argument(
        "--scale",
        default="default",
        choices=list(SCALE_NAMES),
        help="experiment scale preset (default: default); choices derive "
        "from the one preset registry in repro.experiments.config",
    )
    parser.add_argument("--seed", type=int, default=None, help="workload seed override")
    parser.add_argument(
        "--alpha", type=float, default=None, help="DeFrag SPL threshold override"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the experiment's cell grid (default 1 "
        "= serial; results are byte-identical either way)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget when --jobs > 1 (a timed-out "
        "cell is retried once, then reported as failed)",
    )
    restore = parser.add_argument_group("restore options")
    restore.add_argument(
        "--restore-policy",
        default=None,
        choices=["lru", "lfu", "belady"],
        help="restore cache eviction policy (default lru; belady is the "
        "offline optimum computed from the recipe's future references)",
    )
    restore.add_argument(
        "--faa-window",
        type=int,
        default=None,
        metavar="CHUNKS",
        help="forward-assembly-area window in chunks (0 = off; each "
        "container section is read at most once per window)",
    )
    restore.add_argument(
        "--readahead",
        action="store_true",
        help="batch reads of physically adjacent containers into one "
        "priced positioning plus one sequential transfer",
    )
    parser.add_argument(
        "--scalar",
        action="store_true",
        help="use the chunk-at-a-time reference ingest path instead of "
        "the vectorized batch path (identical results, slower; for "
        "benchmarking and cross-checking)",
    )
    parser.add_argument(
        "--extended-engines",
        action="store_true",
        help="also run the maintenance-phase engines (RevDedup, Hybrid) "
        "in fig4/fig6 and the restore ablation; the default engine set "
        "— and its committed golden tables — stays unchanged without "
        "this flag",
    )
    parser.add_argument(
        "--bytes",
        dest="byte_level",
        action="store_true",
        help="feed the group workload through the byte-level ingest "
        "path: real generated buffers chunked by the Gear skip-then-"
        "scan CDC and batch-fingerprinted (bytes -> CDC -> fingerprint "
        "-> engine -> containers)",
    )
    parser.add_argument(
        "--save",
        metavar="DIR",
        default=None,
        help="also write each result as JSON and CSV into DIR",
    )
    spill = parser.add_argument_group("out-of-core options")
    spill.add_argument(
        "--resident-containers",
        type=int,
        default=None,
        metavar="N",
        help="cap sealed containers held in RAM at N; the rest spill to "
        "disk and fault back on read (results stay byte-identical — "
        "spill IO is machine IO, never simulated IO)",
    )
    spill.add_argument(
        "--spill-dir",
        metavar="DIR",
        default=None,
        help="directory for spilled containers (default: an in-memory "
        "shim; requires --resident-containers)",
    )
    shard = parser.add_argument_group("sharding options")
    shard.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard the fingerprint index N ways behind the same "
        "interface (1 = degenerate wrapper, byte-identical to the "
        "unsharded substrate; also applies to the chaos scenario)",
    )
    bench = parser.add_argument_group("bench options")
    bench.add_argument(
        "--quick",
        action="store_true",
        help="bench: one repetition, batch path only (skips the slow "
        "scalar reference measurement)",
    )
    bench.add_argument(
        "--no-baseline",
        action="store_true",
        help="bench: skip the regression gate against the committed "
        "BENCH_ingest.json",
    )
    bench.add_argument(
        "--memory",
        action="store_true",
        help="bench: run ONLY the bounded-RSS memory bench — an out-of-"
        "core ingest+restore in a fresh subprocess (default --scale "
        "xlarge), gated on the committed BENCH_memory.json budget",
    )
    bench.add_argument(
        "--generations",
        type=int,
        default=None,
        metavar="N",
        help="bench --memory: truncate the workload to N backups (the "
        "nightly smoke's knob; the gate still applies)",
    )
    chaos = parser.add_argument_group("chaos options")
    chaos.add_argument(
        "--crash-points",
        type=int,
        default=200,
        metavar="N",
        help="chaos: number of seeded crash points to sweep (default 200)",
    )
    chaos.add_argument(
        "--engine",
        default=None,
        metavar="NAME",
        help="chaos: run the scenario through this engine instead of "
        "DeFrag; engines with an out-of-line maintenance phase "
        "(RevDedup, Hybrid) automatically get maintenance steps — and "
        "crash points inside them — added to the sweep",
    )
    chaos.add_argument(
        "--spill",
        action="store_true",
        help="chaos: run the sweep over a spilling store (tight resident "
        "budget), exercising crash points in the spill/evict/fault-back "
        "paths",
    )
    obs = parser.add_argument_group("observability options")
    obs.add_argument(
        "--events",
        metavar="PATH",
        default=None,
        help="trace: also write the JSONL event stream (DeFrag decisions, "
        "cache evictions, phase spans, ...) to PATH",
    )
    obs.add_argument(
        "--last",
        action="store_true",
        help="stats: render the snapshot saved by the last 'trace' run "
        "(the default and only mode, spelled out)",
    )
    obs.add_argument(
        "--perfetto",
        metavar="PATH",
        default=None,
        help="trace: also export the run's lifecycle events as Chrome "
        "trace-event JSON viewable at ui.perfetto.dev",
    )
    dash = parser.add_argument_group("dash options")
    dash.add_argument(
        "--stats",
        metavar="PATH",
        action="append",
        default=None,
        help="dash: metrics snapshot(s) saved by 'repro trace' (repeat "
        "for several runs; default: .repro_stats.json when present)",
    )
    dash.add_argument(
        "--out",
        metavar="PATH",
        default="dash.html",
        help="dash: output HTML file (default dash.html)",
    )
    return parser


def _configure_logging(args: argparse.Namespace) -> None:
    """Root handler for the library's module-level loggers."""
    if args.quiet:
        level = logging.ERROR
    elif args.verbose >= 2:
        level = logging.DEBUG
    elif args.verbose == 1:
        level = logging.INFO
    else:
        level = logging.WARNING
    logging.basicConfig(level=level, format="%(levelname)s %(name)s: %(message)s")


def _run_trace(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """``python -m repro trace <fig>``: rerun one figure with the
    observability session on, print its table plus the metrics dump, and
    persist the snapshot (and optionally the JSONL event stream)."""
    import json

    from repro.experiments import common
    from repro.obs import (
        JsonlEventSink,
        ListEventSink,
        Observability,
        build_manifest,
        obs_session,
        read_jsonl,
        write_chrome_trace,
    )
    from repro.obs.manifest import MANIFEST_EVENT

    if args.target is None:
        parser.error("trace needs a figure, e.g.: trace fig4")
    if args.target not in _FIGURES:
        parser.error(
            f"unknown trace target {args.target!r} "
            f"(choose from {', '.join(sorted(_FIGURES))})"
        )
    config = _make_config(args)
    manifest = build_manifest(
        config=config, scale=args.scale, target=args.target, jobs=args.jobs
    )
    # --perfetto without --events still needs the event stream: collect
    # it in memory instead of on disk
    sink = None
    if args.events is not None:
        sink = JsonlEventSink(args.events)
    elif args.perfetto is not None:
        sink = ListEventSink()
    # drop memoized workload runs so the figure actually executes (and
    # records) under this session, then again so later obs-off runs
    # don't reuse anything built during it
    common.clear_memo()
    try:
        with obs_session(Observability(events=sink)) as obs:
            if sink is not None:
                # provenance rides first in the stream
                obs.events.emit(MANIFEST_EVENT, **manifest.as_dict())
            result = _resolve(args.target)(config, jobs=args.jobs)
    finally:
        common.clear_memo()
    print(result.table(fmt=_FLOAT_FMT.get(args.target, "{:.1f}")))
    print()
    print(obs.registry.render())
    LAST_STATS_PATH.write_text(
        json.dumps(
            {"manifest": manifest.as_dict(), "metrics": obs.registry.snapshot()},
            indent=2,
        )
    )
    print()
    if args.events is not None:
        print(f"wrote {sink.n_events} events to {sink.path}")
    if args.perfetto is not None:
        events = (
            sink.events
            if isinstance(sink, ListEventSink)
            else read_jsonl(args.events)
        )
        n_slices = write_chrome_trace(args.perfetto, events, manifest)
        print(
            f"wrote {n_slices} trace slices to {args.perfetto} "
            "(open at https://ui.perfetto.dev)"
        )
    print(f"metrics snapshot saved to {LAST_STATS_PATH} (view: repro stats --last)")
    return 0


def _run_stats(args: argparse.Namespace) -> int:
    """``python -m repro stats --last``: render the saved snapshot."""
    import json

    from repro.obs import render_snapshot

    if not LAST_STATS_PATH.exists():
        print(f"no {LAST_STATS_PATH} found — run 'repro trace <fig>' first")
        return 1
    data = json.loads(LAST_STATS_PATH.read_text())
    # PR 7 wraps the snapshot with its provenance manifest; bare
    # snapshots from older checkouts still render
    manifest = data.get("manifest") if "metrics" in data else None
    if manifest:
        pairs = " ".join(f"{k}={v}" for k, v in manifest.items())
        print(f"== run ==\n{pairs}")
    print(render_snapshot(data.get("metrics", data)))
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    """``python -m repro bench``: time the ingest and restore paths;
    exit non-zero if either regressed more than 2x against its committed
    baseline."""
    import json

    from repro.bench import (
        check_chunking_regression,
        check_regression,
        check_restore_regression,
        check_shard_regression,
        drift_summary,
        history_record,
        load_baseline,
        load_chunking_baseline,
        load_history,
        load_restore_baseline,
        load_shard_baseline,
        reference_summary,
        run_bench,
        run_chunking_bench,
        run_restore_bench,
        run_shard_bench,
    )

    if args.memory:
        return _run_memory_bench(args)
    repeats = 1 if args.quick else 3
    result = run_bench(
        repeats=repeats,
        scalar=not args.quick,
        jobs=args.jobs if args.jobs > 1 else None,
    )
    print(json.dumps(result, indent=2))
    restore_result = run_restore_bench(repeats=repeats, faa=not args.quick)
    print(json.dumps(restore_result, indent=2))
    chunking_result = run_chunking_bench(repeats=repeats, exact=not args.quick)
    print(json.dumps(chunking_result, indent=2))
    shard_result = run_shard_bench(repeats=repeats)
    print(json.dumps(shard_result, indent=2))
    if args.no_baseline:
        return 0
    exit_code = 0
    baseline = load_baseline()
    if baseline is None:
        print("no committed BENCH_ingest.json found; skipping regression gate")
    else:
        failure = check_regression(result, baseline)
        if failure is not None:
            print(f"FAIL: {failure}")
            exit_code = 1
        else:
            base = baseline.get("ingest", baseline).get("batch_seconds")
            print(f"OK: ingest within 2x of committed baseline ({base}s)")
            print(reference_summary(baseline))
    restore_baseline = load_restore_baseline()
    if restore_baseline is None:
        print("no committed BENCH_restore.json found; skipping restore gate")
    else:
        failure = check_restore_regression(restore_result, restore_baseline)
        if failure is not None:
            print(f"FAIL: {failure}")
            exit_code = 1
        else:
            base = restore_baseline.get("restore", restore_baseline).get(
                "restore_seconds"
            )
            print(f"OK: restore within 2x of committed baseline ({base}s)")
    chunking_baseline = load_chunking_baseline()
    if chunking_baseline is None:
        print("no committed BENCH_chunking.json found; skipping chunking gate")
    else:
        failure = check_chunking_regression(chunking_result, chunking_baseline)
        if failure is not None:
            print(f"FAIL: {failure}")
            exit_code = 1
        else:
            rec = chunking_baseline.get("chunking", chunking_baseline)
            print(
                "OK: chunking within 2x of committed baseline "
                f"({rec.get('seqcdc_seconds')}s) and >=5x the committed "
                f"exact-path rate ({rec.get('exact_mb_per_s')} MB/s)"
            )
    shard_baseline = load_shard_baseline()
    if shard_baseline is None:
        print("no committed BENCH_shard.json found; skipping shard gate")
    else:
        failure = check_shard_regression(shard_result, shard_baseline)
        if failure is not None:
            print(f"FAIL: {failure}")
            exit_code = 1
        else:
            rec = shard_baseline.get("shard", shard_baseline)
            print(
                "OK: 1-shard wrapper byte-identical, routed lookups "
                f"within 2x of committed baseline "
                f"({rec.get('lookup_seconds')}s) and above the "
                f"{rec.get('lookup_floor_per_s')}/s floor"
            )
    history = load_history()
    if history:
        current = history_record(
            ingest=result, restore=restore_result, chunking=chunking_result
        )
        for line in drift_summary(current, history):
            print(f"drift: {line}")
    return exit_code


def _run_memory_bench(args: argparse.Namespace) -> int:
    """``python -m repro bench --memory``: the bounded-RSS gate.

    Runs the out-of-core probe in a fresh subprocess (so ``ru_maxrss``
    measures this workload alone) at ``--scale`` (default: xlarge, the
    scale the committed budget was measured at) and fails if peak RSS
    exceeds the BENCH_memory.json budget."""
    import json

    from repro.bench import run_memory_bench
    from repro.memory import check_memory_gate, load_memory_budget

    scale = args.scale if args.scale != "default" else "xlarge"
    resident = (
        args.resident_containers if args.resident_containers is not None else 64
    )
    record = run_memory_bench(
        scale=scale,
        generations=args.generations,
        resident_containers=resident,
    )
    print(json.dumps(record, indent=2, sort_keys=True))
    if args.no_baseline:
        return 0
    baseline = load_memory_budget()
    if baseline is None:
        print("no committed BENCH_memory.json found; skipping memory gate")
        return 0
    failure = check_memory_gate(record, baseline)
    if failure is not None:
        print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: peak RSS {record['peak_rss_mb']:.1f} MB within the committed "
        f"budget ({baseline['budget_rss_mb']:.1f} MB)"
    )
    return 0


def _run_dash(args: argparse.Namespace) -> int:
    """``python -m repro dash``: render the standalone HTML dashboard
    from trace snapshots + committed bench baselines + bench history."""
    from repro.obs.dash import build_dashboard

    stats = args.stats
    if stats is None:
        stats = [str(LAST_STATS_PATH)] if LAST_STATS_PATH.exists() else []
    missing = [p for p in stats if not Path(p).is_file()]
    for p in missing:
        print(f"warning: snapshot {p} not found, skipping")
    out = build_dashboard(args.out, stats_paths=stats)
    print(f"dashboard written to {out}")
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    """``python -m repro chaos``: crash-recovery sweep — N seeded crash
    points, each recovered and verified for zero data loss. Exits 0 only
    if every point recovers cleanly."""
    from repro.chaos import ChaosScenario, run_chaos

    seed = args.seed if args.seed is not None else 2012
    scenario = None
    overrides = {}
    if args.spill:
        # a tight budget over the chaos workload's container count, so
        # crash points land while most of the store is spilled
        overrides["resident_containers"] = 2
    if args.shards is not None and args.shards > 1:
        # adds the "shard" crash class: points that fire between
        # per-shard index flushes
        overrides["n_shards"] = args.shards
    if args.engine is not None:
        from repro.api import engine_info

        overrides["engine"] = args.engine
        if engine_info(args.engine).supports_maintenance:
            # crash points must be able to land inside the out-of-line
            # phase, so the scenario drives it after every backup
            overrides["maintenance_every"] = 1
    if overrides:
        scenario = ChaosScenario(seed=seed, **overrides)
    report = run_chaos(n_points=args.crash_points, seed=seed, scenario=scenario)
    print(report.render())
    if args.save is not None:
        outdir = Path(args.save)
        outdir.mkdir(parents=True, exist_ok=True)
        out = outdir / "chaos.json"
        out.write_text(report.to_json())
        print(f"chaos report saved to {out}")
    return 0 if report.ok else 1


def _make_config(args: argparse.Namespace) -> ExperimentConfig:
    config = ExperimentConfig.by_name(args.scale)
    if args.seed is not None:
        config = config.with_(seed=args.seed)
    if args.alpha is not None:
        config = config.with_(alpha=args.alpha)
    if args.scalar:
        config = config.with_(batch=False)
    if args.byte_level:
        config = config.with_(byte_level=True)
    if args.extended_engines:
        config = config.with_(extended_engines=True)
    if args.restore_policy is not None:
        config = config.with_(restore_policy=args.restore_policy)
    if args.faa_window is not None:
        config = config.with_(restore_faa_window=args.faa_window)
    if args.readahead:
        config = config.with_(restore_readahead=True)
    if args.shards is not None:
        from repro.sharding import ShardConfig

        config = config.with_(shard=ShardConfig(n_shards=args.shards))
    if args.resident_containers is not None or args.spill_dir is not None:
        from repro.storage.store import StoreConfig

        # mirror create_resources' default store convention, plus the
        # out-of-core budget (StoreConfig validates the combination)
        config = config.with_(
            store=StoreConfig(
                container_bytes=config.container_bytes,
                seal_seeks=0,
                cache_containers=config.restore_cache_containers,
                resident_containers=args.resident_containers,
                spill_dir=args.spill_dir,
            )
        )
    return config


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args)
    if args.experiment == "bench":
        return _run_bench(args)
    if args.experiment == "trace":
        return _run_trace(args, parser)
    if args.experiment == "stats":
        return _run_stats(args)
    if args.experiment == "dash":
        return _run_dash(args)
    if args.experiment == "chaos":
        return _run_chaos(args)
    config = _make_config(args)
    if args.experiment == "report":
        from repro.experiments.report import generate_markdown

        text = generate_markdown(config, jobs=args.jobs)
        print(text)
        if args.save is not None:
            from pathlib import Path

            outdir = Path(args.save)
            outdir.mkdir(parents=True, exist_ok=True)
            (outdir / "report.md").write_text(text)
        return 0
    from repro.experiments.suite import ALL_FIGURES, run_suite, suite_failed

    names = list(ALL_FIGURES) if args.experiment == "all" else [args.experiment]
    results, errors = run_suite(
        names, config, jobs=args.jobs, timeout_s=args.cell_timeout
    )
    for name in names:
        if name in errors:
            print(f"FAILED {name}: {errors[name]}")
            print()
            continue
        result = results[name]
        print(result.table(fmt=_FLOAT_FMT.get(name, "{:.1f}")))
        print()
        if args.save is not None:
            from pathlib import Path

            from repro.experiments.io import save_csv, save_json

            outdir = Path(args.save)
            outdir.mkdir(parents=True, exist_ok=True)
            save_json(result, outdir / f"{name}.json")
            save_csv(result, outdir / f"{name}.csv")
    return 1 if suite_failed(results, errors) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
